#include "common/hash.h"

namespace blobseer {

uint64_t Fnv1a64(Slice data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < data.size(); i++) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

/// 256-entry table for the reflected Castagnoli polynomial, built once.
struct Crc32cTable {
  uint32_t entry[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; bit++) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      entry[i] = c;
    }
  }
};

#if defined(__x86_64__) || defined(__i386__)
#define BLOBSEER_CRC32C_HW_DISPATCH 1

/// SSE4.2 CRC32 instruction form, compiled for sse4.2 regardless of the
/// tree-wide flags and only called after a runtime cpuid check. Processes
/// 8 bytes per instruction with unaligned head/tail handling.
__attribute__((target("sse4.2"))) uint32_t Crc32cExtendHw(uint32_t crc,
                                                          const void* data,
                                                          size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    n--;
  }
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#endif
  while (n >= 4) {
    uint32_t chunk;
    __builtin_memcpy(&chunk, p, 4);
    crc = __builtin_ia32_crc32si(crc, chunk);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    n--;
  }
  return ~crc;
}
#endif  // x86

}  // namespace

namespace internal {

uint32_t Crc32cExtendPortable(uint32_t crc, const void* data, size_t n) {
  static const Crc32cTable table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; i++) {
    crc = table.entry[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace internal

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
#ifdef BLOBSEER_CRC32C_HW_DISPATCH
  static const bool hw = __builtin_cpu_supports("sse4.2");
  if (hw) return Crc32cExtendHw(crc, data, n);
#endif
  return internal::Crc32cExtendPortable(crc, data, n);
}

uint32_t Crc32c(Slice data) {
  return Crc32cExtend(0, data.data(), data.size());
}

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace blobseer
