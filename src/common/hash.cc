#include "common/hash.h"

namespace blobseer {

uint64_t Fnv1a64(Slice data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < data.size(); i++) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

/// 256-entry table for the reflected Castagnoli polynomial, built once.
struct Crc32cTable {
  uint32_t entry[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; bit++) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      entry[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  static const Crc32cTable table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; i++) {
    crc = table.entry[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(Slice data) {
  return Crc32cExtend(0, data.data(), data.size());
}

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace blobseer
