#include "common/serde.h"

#include "common/string_util.h"

namespace blobseer {

std::string PageId::ToString() const {
  return StrFormat("page:%016llx%016llx", static_cast<unsigned long long>(hi),
                   static_cast<unsigned long long>(lo));
}

std::string Extent::ToString() const {
  return StrFormat("[%llu,+%llu)", static_cast<unsigned long long>(offset),
                   static_cast<unsigned long long>(size));
}

}  // namespace blobseer
