// Hashing utilities: FNV-1a for DHT key placement, splitmix for RNG seeding.
#ifndef BLOBSEER_COMMON_HASH_H_
#define BLOBSEER_COMMON_HASH_H_

#include <cstdint>

#include "common/slice.h"

namespace blobseer {

/// 64-bit FNV-1a over a byte range. Deterministic across platforms; used for
/// DHT key placement so metadata distribution is reproducible.
uint64_t Fnv1a64(Slice data);

/// One round of the splitmix64 mixer; good avalanche for integer keys.
uint64_t Mix64(uint64_t x);

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78): the checksum used
/// by the pagelog on-disk record format to detect torn or corrupted records.
uint32_t Crc32c(Slice data);

/// Incremental form: extends `crc` (result of a previous Crc32c/Extend call,
/// or 0 for an empty prefix) over another byte range. Dispatches to the
/// SSE4.2 CRC32 instruction when the CPU has it (the pagelog append path
/// checksums every payload byte; the byte-table fallback caps appends at a
/// few hundred MB/s), with the portable table otherwise.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

namespace internal {
/// Portable byte-table implementation, exposed so tests can cross-check the
/// hardware-accelerated dispatch against it on arbitrary inputs.
uint32_t Crc32cExtendPortable(uint32_t crc, const void* data, size_t n);
}  // namespace internal

/// Combines two 64-bit hashes.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_HASH_H_
