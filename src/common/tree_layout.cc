#include "common/tree_layout.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace blobseer {

uint64_t NumPages(uint64_t size, uint64_t psize) {
  return size == 0 ? 1 : CeilDiv(size, psize);
}

uint64_t RootSizeBytes(uint64_t size, uint64_t psize) {
  return Pow2Ceil(NumPages(size, psize)) * psize;
}

bool IsValidBlock(const Extent& b, uint64_t psize) {
  if (b.size < psize) return false;
  if (b.size % psize != 0) return false;
  if (!IsPow2(b.size / psize)) return false;
  return b.offset % b.size == 0;
}

bool IsLeafBlock(const Extent& b, uint64_t psize) { return b.size == psize; }

Extent ParentBlock(const Extent& b) {
  uint64_t psz = b.size * 2;
  return Extent{AlignDown(b.offset, psz), psz};
}

Extent LeftChildBlock(const Extent& b) { return Extent{b.offset, b.size / 2}; }

Extent RightChildBlock(const Extent& b) {
  return Extent{b.offset + b.size / 2, b.size / 2};
}

bool IsLeftChild(const Extent& b) { return b.offset % (2 * b.size) == 0; }

std::vector<Extent> UpdateNodeSet(const Extent& range, uint64_t total_after,
                                  uint64_t psize) {
  BS_CHECK(range.size > 0) << "empty update range";
  BS_CHECK(range.end() <= total_after)
      << "range " << range.ToString() << " beyond total " << total_after;
  uint64_t root_size = RootSizeBytes(total_after, psize);
  std::vector<Extent> out;
  for (uint64_t bs = psize;; bs *= 2) {
    uint64_t first = AlignDown(range.offset, bs);
    uint64_t last = AlignDown(range.end() - 1, bs);
    for (uint64_t off = first; off <= last; off += bs) {
      out.push_back(Extent{off, bs});
    }
    if (bs >= root_size) break;
  }
  return out;
}

bool NodeSetContains(const Extent& block, const Extent& range,
                     uint64_t total_after, uint64_t psize) {
  if (!IsValidBlock(block, psize)) return false;
  if (block.size > RootSizeBytes(total_after, psize)) return false;
  return block.Intersects(range);
}

std::vector<Extent> UpdateBorderBlocks(const Extent& range,
                                       uint64_t total_after, uint64_t psize) {
  std::vector<Extent> out;
  for (const Extent& b : UpdateNodeSet(range, total_after, psize)) {
    if (IsLeafBlock(b, psize)) continue;
    for (const Extent& child : {LeftChildBlock(b), RightChildBlock(b)}) {
      if (!child.Intersects(range)) out.push_back(child);
    }
  }
  return out;
}

std::vector<Extent> EdgePageBlocks(const Extent& range, uint64_t old_size,
                                   uint64_t psize) {
  std::vector<Extent> out;
  if (range.offset % psize != 0 && range.offset > 0) {
    out.push_back(Extent{AlignDown(range.offset, psize), psize});
  }
  if (range.end() % psize != 0 && range.end() < old_size) {
    Extent tail{AlignDown(range.end(), psize), psize};
    if (out.empty() || out[0] != tail) out.push_back(tail);
  }
  return out;
}

uint32_t TreeDepth(uint64_t size, uint64_t psize) {
  return FloorLog2(RootSizeBytes(size, psize) / psize) + 1;
}

}  // namespace blobseer
