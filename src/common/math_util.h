// Power-of-two arithmetic used throughout segment-tree layout code.
#ifndef BLOBSEER_COMMON_MATH_UTIL_H_
#define BLOBSEER_COMMON_MATH_UTIL_H_

#include <bit>
#include <cstdint>

namespace blobseer {

inline bool IsPow2(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x. Precondition: x >= 1 and representable.
inline uint64_t Pow2Ceil(uint64_t x) { return std::bit_ceil(x); }

/// floor(log2(x)). Precondition: x >= 1.
inline uint32_t FloorLog2(uint64_t x) {
  return 63u - static_cast<uint32_t>(std::countl_zero(x));
}

/// ceil(a / b). Precondition: b != 0.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Rounds a down to a multiple of b (b power of two not required).
inline uint64_t AlignDown(uint64_t a, uint64_t b) { return a - a % b; }

/// Rounds a up to a multiple of b.
inline uint64_t AlignUp(uint64_t a, uint64_t b) { return CeilDiv(a, b) * b; }

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_MATH_UTIL_H_
