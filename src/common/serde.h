// Bounds-checked little-endian binary serialization for wire messages.
//
// Every RPC message type implements:
//   void EncodeTo(BinaryWriter* w) const;
//   Status DecodeFrom(BinaryReader* r);
#ifndef BLOBSEER_COMMON_SERDE_H_
#define BLOBSEER_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace blobseer {

/// Append-only encoder. All integers are fixed-width little-endian; byte
/// strings are length-prefixed with a u32.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutBytes(Slice s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  void PutString(const std::string& s) { PutBytes(Slice(s)); }

  void PutPageId(const PageId& p) {
    PutU64(p.hi);
    PutU64(p.lo);
  }
  void PutExtent(const Extent& e) {
    PutU64(e.offset);
    PutU64(e.size);
  }

  /// Appends raw bytes with no length prefix (caller manages framing).
  void PutRawBytes(Slice s) { buf_.append(s.data(), s.size()); }

  size_t size() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }
  std::string TakeBuffer() && { return std::move(buf_); }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked decoder over a borrowed byte range.
class BinaryReader {
 public:
  explicit BinaryReader(Slice s) : data_(s) {}

  Status GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU16(uint16_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetI64(int64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetDouble(double* v) { return GetRaw(v, sizeof(*v)); }
  Status GetBool(bool* v) {
    uint8_t b;
    BS_RETURN_NOT_OK(GetU8(&b));
    *v = b != 0;
    return Status::OK();
  }

  Status GetBytes(std::string* out) {
    uint32_t n = 0;  // initialized: GCC 12 -Wmaybe-uninitialized inlining FP
    BS_RETURN_NOT_OK(GetU32(&n));
    if (n > data_.size()) return Truncated();
    out->assign(data_.data(), n);
    data_.RemovePrefix(n);
    return Status::OK();
  }
  /// Zero-copy variant: the returned slice borrows the reader's input.
  Status GetBytesView(Slice* out) {
    uint32_t n = 0;
    BS_RETURN_NOT_OK(GetU32(&n));
    if (n > data_.size()) return Truncated();
    *out = data_.SubSlice(0, n);
    data_.RemovePrefix(n);
    return Status::OK();
  }
  Status GetString(std::string* out) { return GetBytes(out); }

  Status GetPageId(PageId* p) {
    BS_RETURN_NOT_OK(GetU64(&p->hi));
    return GetU64(&p->lo);
  }
  Status GetExtent(Extent* e) {
    BS_RETURN_NOT_OK(GetU64(&e->offset));
    return GetU64(&e->size);
  }

  size_t remaining() const { return data_.size(); }

  /// Fails unless the whole input has been consumed: catches trailing
  /// garbage from mismatched message definitions.
  Status ExpectEnd() const {
    if (!data_.empty())
      return Status::Corruption("trailing bytes in message: " +
                                std::to_string(data_.size()));
    return Status::OK();
  }

 private:
  Status GetRaw(void* p, size_t n) {
    if (data_.size() < n) return Truncated();
    std::memcpy(p, data_.data(), n);
    data_.RemovePrefix(n);
    return Status::OK();
  }
  static Status Truncated() {
    return Status::Corruption("truncated message");
  }
  Slice data_;
};

/// Encodes a vector of messages with a u32 count prefix.
template <typename T>
void PutVector(BinaryWriter* w, const std::vector<T>& v) {
  w->PutU32(static_cast<uint32_t>(v.size()));
  for (const T& e : v) e.EncodeTo(w);
}

template <typename T>
Status GetVector(BinaryReader* r, std::vector<T>* out,
                 uint32_t sanity_max = 64u * 1024 * 1024) {
  uint32_t n = 0;
  BS_RETURN_NOT_OK(r->GetU32(&n));
  // Every element encodes to at least one byte, so a count beyond the
  // remaining payload is corrupt — this also stops adversarial counts from
  // forcing gigantic allocations.
  if (n > sanity_max || n > r->remaining())
    return Status::Corruption("vector count exceeds payload");
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    T e;
    BS_RETURN_NOT_OK(e.DecodeFrom(r));
    out->push_back(std::move(e));
  }
  return Status::OK();
}

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_SERDE_H_
