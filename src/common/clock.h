// Pluggable time source so the same client/service code runs on the real
// clock or under the simnet virtual-time scheduler.
#ifndef BLOBSEER_COMMON_CLOCK_H_
#define BLOBSEER_COMMON_CLOCK_H_

#include <cstdint>
#include <memory>

namespace blobseer {

/// Abstract monotonic clock, microsecond resolution.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic timestamp in microseconds.
  virtual uint64_t NowMicros() = 0;
  /// Blocks the calling (real or simulated) thread for `micros`.
  virtual void SleepForMicros(uint64_t micros) = 0;
};

/// Wall clock backed by std::chrono::steady_clock.
class RealClock : public Clock {
 public:
  uint64_t NowMicros() override;
  void SleepForMicros(uint64_t micros) override;

  /// Process-wide shared instance.
  static Clock* Default();
};

/// Simple elapsed-time helper.
class Stopwatch {
 public:
  explicit Stopwatch(Clock* clock = RealClock::Default())
      : clock_(clock), start_(clock_->NowMicros()) {}
  void Reset() { start_ = clock_->NowMicros(); }
  uint64_t ElapsedMicros() const { return clock_->NowMicros() - start_; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  Clock* clock_;
  uint64_t start_;
};

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_CLOCK_H_
