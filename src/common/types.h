// Core identifier and extent types shared by every BlobSeer subsystem.
#ifndef BLOBSEER_COMMON_TYPES_H_
#define BLOBSEER_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace blobseer {

/// Globally unique blob identifier, assigned by the version manager.
/// Zero is never a valid blob id.
using BlobId = uint64_t;
inline constexpr BlobId kInvalidBlobId = 0;

/// Snapshot version label. Version 0 is the (published) empty snapshot every
/// blob starts with; updates produce versions 1, 2, ... in total order.
using Version = uint64_t;
/// Sentinel meaning "no version": used for never-written subtree links
/// (holes) and for absent previous-leaf links.
inline constexpr Version kNoVersion = std::numeric_limits<uint64_t>::max();

/// Dense index of a data provider, assigned by the provider manager at
/// registration time. Stored in metadata leaves instead of full addresses.
using ProviderId = uint32_t;
inline constexpr ProviderId kInvalidProvider =
    std::numeric_limits<uint32_t>::max();

/// Globally unique page identifier. Clients generate these locally as
/// (client id, sequence number) so that no coordination is required: updates
/// never overwrite pages, they always mint fresh ids (paper section 3).
struct PageId {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const PageId&, const PageId&) = default;
  friend auto operator<=>(const PageId&, const PageId&) = default;

  bool valid() const { return hi != 0 || lo != 0; }
  std::string ToString() const;
};

/// A byte range [offset, offset + size) of a blob.
struct Extent {
  uint64_t offset = 0;
  uint64_t size = 0;

  friend bool operator==(const Extent&, const Extent&) = default;
  friend auto operator<=>(const Extent&, const Extent&) = default;

  uint64_t end() const { return offset + size; }
  bool empty() const { return size == 0; }

  /// True iff the two half-open ranges share at least one byte.
  bool Intersects(const Extent& o) const {
    return offset < o.end() && o.offset < end();
  }
  /// True iff `o` is fully contained in this extent.
  bool Contains(const Extent& o) const {
    return offset <= o.offset && o.end() <= end();
  }
  bool ContainsOffset(uint64_t off) const {
    return offset <= off && off < end();
  }
  /// Intersection of the two ranges; empty extent if disjoint.
  Extent Clip(const Extent& o) const {
    uint64_t b = offset > o.offset ? offset : o.offset;
    uint64_t e = end() < o.end() ? end() : o.end();
    return b < e ? Extent{b, e - b} : Extent{b, 0};
  }
  std::string ToString() const;
};

}  // namespace blobseer

namespace std {
template <>
struct hash<blobseer::PageId> {
  size_t operator()(const blobseer::PageId& p) const noexcept {
    // splitmix-style combine; good enough for hash maps.
    uint64_t x = p.hi * 0x9E3779B97F4A7C15ULL ^ p.lo;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    return static_cast<size_t>(x);
  }
};
}  // namespace std

#endif  // BLOBSEER_COMMON_TYPES_H_
