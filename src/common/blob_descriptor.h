// Blob identity and branch ancestry, shared by the version manager, the
// metadata client and the blob client.
#ifndef BLOBSEER_COMMON_BLOB_DESCRIPTOR_H_
#define BLOBSEER_COMMON_BLOB_DESCRIPTOR_H_

#include <string>
#include <vector>

#include "common/serde.h"
#include "common/types.h"

namespace blobseer {

/// Versions are shared along branch ancestry: a branch created at version v
/// owns versions > v, its parent owns the versions up to v (recursively).
/// Segment i of an ancestry owns versions (segments[i-1].up_to,
/// segments[i].up_to]; the final segment is the blob itself with
/// up_to = kMaxVersion.
inline constexpr Version kMaxVersion = kNoVersion;

struct AncestrySegment {
  BlobId origin = kInvalidBlobId;
  Version up_to = kMaxVersion;

  friend bool operator==(const AncestrySegment&,
                         const AncestrySegment&) = default;

  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(origin);
    w->PutU64(up_to);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&origin));
    return r->GetU64(&up_to);
  }
};

/// Maps a version number to the blob that owns (created) it. Metadata node
/// keys use the owning blob, so branches transparently share all metadata
/// and data written before the branch point (paper: "cheap branching").
class BranchAncestry {
 public:
  BranchAncestry() = default;
  explicit BranchAncestry(std::vector<AncestrySegment> segments)
      : segments_(std::move(segments)) {}

  /// The blob owning version `v`. Falls back to the last segment (the blob
  /// itself) for any v beyond recorded bounds.
  BlobId Resolve(Version v) const {
    for (const auto& s : segments_) {
      if (v <= s.up_to) return s.origin;
    }
    return segments_.empty() ? kInvalidBlobId : segments_.back().origin;
  }

  const std::vector<AncestrySegment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }

 private:
  std::vector<AncestrySegment> segments_;
};

/// GET_RECENT outcome: a recently published version together with its
/// snapshot size (the paper's primitive returns both).
struct RecentVersion {
  Version version = 0;
  uint64_t size = 0;
};

/// Everything a client needs to operate on a blob.
struct BlobDescriptor {
  BlobId id = kInvalidBlobId;
  uint64_t psize = 0;
  std::vector<AncestrySegment> ancestry;

  BranchAncestry Ancestry() const { return BranchAncestry(ancestry); }

  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(id);
    w->PutU64(psize);
    PutVector(w, ancestry);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&id));
    BS_RETURN_NOT_OK(r->GetU64(&psize));
    return GetVector(r, &ancestry);
  }
};

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_BLOB_DESCRIPTOR_H_
