// Pure segment-tree layout arithmetic (paper section 4.1).
//
// Metadata for snapshot version v of a blob is a binary segment tree over
// byte ranges ("blocks"). A block is an extent whose size is psize * 2^k and
// whose offset is a multiple of its size. Leaves have size psize (one page);
// the root of version v covers [0, RootSizeBytes(size_v, psize)).
//
// The node set an update creates is a *pure function* of its range and the
// blob size after the update. Both the writer and the version manager
// evaluate it independently: that is what allows the version manager to hand
// out partial border sets for not-yet-published concurrent updates without
// reading the DHT (paper section 4.2). Because the version manager needs
// exactly this math and nothing else from the metadata layer, it lives in
// common/ — layer-2 services must not depend on each other.
#ifndef BLOBSEER_COMMON_TREE_LAYOUT_H_
#define BLOBSEER_COMMON_TREE_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace blobseer {

/// Number of pages needed to hold `size` bytes (>= 1 page once non-empty).
uint64_t NumPages(uint64_t size, uint64_t psize);

/// Size in bytes covered by the root of a tree for a blob of `size` bytes:
/// pow2ceil(ceil(size / psize)) * psize. A zero-size blob still maps to one
/// page so a root block is always well-defined.
uint64_t RootSizeBytes(uint64_t size, uint64_t psize);

/// True iff `b` is a well-formed tree block for the given page size.
bool IsValidBlock(const Extent& b, uint64_t psize);

bool IsLeafBlock(const Extent& b, uint64_t psize);

/// Parent/child navigation. Precondition: valid blocks; children only exist
/// for non-leaf blocks.
Extent ParentBlock(const Extent& b);
Extent LeftChildBlock(const Extent& b);
Extent RightChildBlock(const Extent& b);

/// True iff `b` is the left child of its parent (offset divisible by 2*size).
bool IsLeftChild(const Extent& b);

/// The set of tree blocks an update with byte range `range` creates when the
/// blob size after the update is `total_after`. Ordered bottom-up: all
/// leaves left-to-right, then each upper level, ending with the root block.
/// This includes expansion roots when the tree grows (paper Figure 1(c)).
std::vector<Extent> UpdateNodeSet(const Extent& range, uint64_t total_after,
                                  uint64_t psize);

/// Membership test equivalent to `UpdateNodeSet(...) contains block`, in
/// O(1): block intersects the range and fits under the root.
bool NodeSetContains(const Extent& block, const Extent& range,
                     uint64_t total_after, uint64_t psize);

/// Blocks that are children of the update's new inner nodes but do not
/// intersect the update range: the "border nodes" of paper section 4.2,
/// whose version labels must be resolved from previous snapshots.
std::vector<Extent> UpdateBorderBlocks(const Extent& range,
                                       uint64_t total_after, uint64_t psize);

/// Leaf blocks at the edges of an unaligned update whose previous leaf
/// version is needed to preserve the bytes the update does not cover:
/// the head page when `range.offset` is not page-aligned, and the tail page
/// when `range.end()` is neither page-aligned nor at/after `old_size`.
/// Returns zero, one, or two distinct leaf blocks.
std::vector<Extent> EdgePageBlocks(const Extent& range, uint64_t old_size,
                                   uint64_t psize);

/// Tree depth (number of levels) for a blob of `size` bytes: 1 for a single
/// page, log2(root pages) + 1 otherwise.
uint32_t TreeDepth(uint64_t size, uint64_t psize);

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_TREE_LAYOUT_H_
