// Deterministic fast RNG (xoshiro256**) for tests, benchmarks and id minting.
#ifndef BLOBSEER_COMMON_RANDOM_H_
#define BLOBSEER_COMMON_RANDOM_H_

#include <cstdint>

#include "common/hash.h"

namespace blobseer {

/// xoshiro256** seeded via splitmix64. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) {
    uint64_t x = seed;
    for (auto& w : s_) w = (x = Mix64(x));
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Precondition n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi]. Precondition lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_RANDOM_H_
