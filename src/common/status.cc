#include "common/status.h"

namespace blobseer {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code());
  if (!message().empty()) {
    s += ": ";
    s += message();
  }
  return s;
}

}  // namespace blobseer
