#include "common/clock.h"

#include <chrono>
#include <thread>

namespace blobseer {

uint64_t RealClock::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RealClock::SleepForMicros(uint64_t micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

Clock* RealClock::Default() {
  static RealClock clock;
  return &clock;
}

}  // namespace blobseer
