// Non-owning byte view, RocksDB-style.
#ifndef BLOBSEER_COMMON_SLICE_H_
#define BLOBSEER_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace blobseer {

/// A non-owning view over a contiguous byte range. The viewed memory must
/// outlive the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* cstr) : data_(cstr), size_(std::strlen(cstr)) {}  // NOLINT
  Slice(std::string_view sv) : data_(sv.data()), size_(sv.size()) {}  // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Drops the first n bytes from the view.
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  Slice SubSlice(size_t off, size_t len) const {
    assert(off + len <= size_);
    return Slice(data_ + off, len);
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToStringView() const {
    return std::string_view(data_, size_);
  }

  int Compare(const Slice& o) const {
    size_t n = size_ < o.size_ ? size_ : o.size_;
    int r = n == 0 ? 0 : std::memcmp(data_, o.data_, n);
    if (r == 0) {
      if (size_ < o.size_) return -1;
      if (size_ > o.size_) return 1;
    }
    return r;
  }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_SLICE_H_
