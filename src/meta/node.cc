#include "meta/node.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace blobseer::meta {

std::string NodeKey::ToDhtKey() const {
  BinaryWriter w;
  w.PutU8('N');  // namespace tag: metadata node
  w.PutU64(origin);
  w.PutU64(version);
  w.PutU64(block.offset);
  w.PutU64(block.size);
  return std::move(w).TakeBuffer();
}

std::string NodeKey::ToString() const {
  return StrFormat("node{blob=%llu v=%llu %s}",
                   static_cast<unsigned long long>(origin),
                   static_cast<unsigned long long>(version),
                   block.ToString().c_str());
}

void PageFragment::EncodeTo(BinaryWriter* w) const {
  // Format v3: the stable PageId only. Where the page's replicas currently
  // live is the location index's concern, not the immutable leaf's.
  w->PutPageId(pid);
  w->PutU32(page_off);
  w->PutU32(len);
  w->PutU32(data_off);
}

Status PageFragment::DecodeFrom(BinaryReader* r) {
  BS_RETURN_NOT_OK(r->GetPageId(&pid));
  legacy_providers.clear();
  BS_RETURN_NOT_OK(r->GetU32(&page_off));
  BS_RETURN_NOT_OK(r->GetU32(&len));
  return r->GetU32(&data_off);
}

Status PageFragment::DecodeV2From(BinaryReader* r) {
  BS_RETURN_NOT_OK(r->GetPageId(&pid));
  uint8_t n;
  BS_RETURN_NOT_OK(r->GetU8(&n));
  if (n == 0) return Status::Corruption("fragment with empty replica set");
  if (static_cast<uint64_t>(n) * 4 > r->remaining())
    return Status::Corruption("replica count exceeds payload");
  legacy_providers.resize(n);
  for (auto& p : legacy_providers) BS_RETURN_NOT_OK(r->GetU32(&p));
  BS_RETURN_NOT_OK(r->GetU32(&page_off));
  BS_RETURN_NOT_OK(r->GetU32(&len));
  return r->GetU32(&data_off);
}

Status PageFragment::DecodeLegacyFrom(BinaryReader* r) {
  BS_RETURN_NOT_OK(r->GetPageId(&pid));
  ProviderId p = kInvalidProvider;
  BS_RETURN_NOT_OK(r->GetU32(&p));
  legacy_providers.assign(1, p);
  BS_RETURN_NOT_OK(r->GetU32(&page_off));
  BS_RETURN_NOT_OK(r->GetU32(&len));
  return r->GetU32(&data_off);
}

void MetaNode::EncodeTo(BinaryWriter* w) const {
  w->PutU8(kNodeFormatV3);
  w->PutU8(static_cast<uint8_t>(type));
  if (type == Type::kInner) {
    w->PutU64(left_version);
    w->PutU64(right_version);
  } else {
    w->PutU64(prev_version);
    w->PutU32(chain_len);
    PutVector(w, fragments);
  }
}

Status MetaNode::DecodeFrom(BinaryReader* r) {
  uint8_t t;
  BS_RETURN_NOT_OK(r->GetU8(&t));
  // Format v1 carried no version marker: byte 0 was the node type. Marker
  // values 2 and 3 were invalid there, so the first byte disambiguates.
  const uint8_t format = t <= 1 ? 1 : t;
  if (format > 1) {
    if (format != kNodeFormatV2 && format != kNodeFormatV3)
      return Status::Corruption("bad node format");
    BS_RETURN_NOT_OK(r->GetU8(&t));
    if (t > 1) return Status::Corruption("bad node type");
  }
  type = static_cast<Type>(t);
  if (type == Type::kInner) {
    BS_RETURN_NOT_OK(r->GetU64(&left_version));
    return r->GetU64(&right_version);
  }
  BS_RETURN_NOT_OK(r->GetU64(&prev_version));
  BS_RETURN_NOT_OK(r->GetU32(&chain_len));
  if (format == kNodeFormatV3) return GetVector(r, &fragments);
  uint32_t n = 0;
  BS_RETURN_NOT_OK(r->GetU32(&n));
  if (n > r->remaining())
    return Status::Corruption("vector count exceeds payload");
  fragments.clear();
  fragments.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    PageFragment f;
    BS_RETURN_NOT_OK(format == kNodeFormatV2 ? f.DecodeV2From(r)
                                             : f.DecodeLegacyFrom(r));
    fragments.push_back(std::move(f));
  }
  return Status::OK();
}

std::string MetaNode::ToString() const {
  if (type == Type::kInner) {
    return StrFormat("inner{vl=%lld vr=%lld}",
                     static_cast<long long>(left_version),
                     static_cast<long long>(right_version));
  }
  return StrFormat("leaf{frags=%zu prev=%lld chain=%u}", fragments.size(),
                   static_cast<long long>(prev_version), chain_len);
}

}  // namespace blobseer::meta
