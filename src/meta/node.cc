#include "meta/node.h"

#include "common/string_util.h"

namespace blobseer::meta {

std::string NodeKey::ToDhtKey() const {
  BinaryWriter w;
  w.PutU8('N');  // namespace tag: metadata node
  w.PutU64(origin);
  w.PutU64(version);
  w.PutU64(block.offset);
  w.PutU64(block.size);
  return std::move(w).TakeBuffer();
}

std::string NodeKey::ToString() const {
  return StrFormat("node{blob=%llu v=%llu %s}",
                   static_cast<unsigned long long>(origin),
                   static_cast<unsigned long long>(version),
                   block.ToString().c_str());
}

void PageFragment::EncodeTo(BinaryWriter* w) const {
  w->PutPageId(pid);
  w->PutU32(provider);
  w->PutU32(page_off);
  w->PutU32(len);
  w->PutU32(data_off);
}

Status PageFragment::DecodeFrom(BinaryReader* r) {
  BS_RETURN_NOT_OK(r->GetPageId(&pid));
  BS_RETURN_NOT_OK(r->GetU32(&provider));
  BS_RETURN_NOT_OK(r->GetU32(&page_off));
  BS_RETURN_NOT_OK(r->GetU32(&len));
  return r->GetU32(&data_off);
}

void MetaNode::EncodeTo(BinaryWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type));
  if (type == Type::kInner) {
    w->PutU64(left_version);
    w->PutU64(right_version);
  } else {
    w->PutU64(prev_version);
    w->PutU32(chain_len);
    PutVector(w, fragments);
  }
}

Status MetaNode::DecodeFrom(BinaryReader* r) {
  uint8_t t;
  BS_RETURN_NOT_OK(r->GetU8(&t));
  if (t > 1) return Status::Corruption("bad node type");
  type = static_cast<Type>(t);
  if (type == Type::kInner) {
    BS_RETURN_NOT_OK(r->GetU64(&left_version));
    return r->GetU64(&right_version);
  }
  BS_RETURN_NOT_OK(r->GetU64(&prev_version));
  BS_RETURN_NOT_OK(r->GetU32(&chain_len));
  return GetVector(r, &fragments);
}

std::string MetaNode::ToString() const {
  if (type == Type::kInner) {
    return StrFormat("inner{vl=%lld vr=%lld}",
                     static_cast<long long>(left_version),
                     static_cast<long long>(right_version));
  }
  return StrFormat("leaf{frags=%zu prev=%lld chain=%u}", fragments.size(),
                   static_cast<long long>(prev_version), chain_len);
}

}  // namespace blobseer::meta
