// Segment-tree layout arithmetic, re-exported under the metadata layer's
// namespace. The implementation lives in common/tree_layout.h so that the
// version manager (which evaluates the same pure math when computing border
// sets) does not need to link the metadata layer.
#ifndef BLOBSEER_META_LAYOUT_H_
#define BLOBSEER_META_LAYOUT_H_

#include "common/tree_layout.h"

namespace blobseer::meta {

using blobseer::EdgePageBlocks;
using blobseer::IsLeafBlock;
using blobseer::IsLeftChild;
using blobseer::IsValidBlock;
using blobseer::LeftChildBlock;
using blobseer::NodeSetContains;
using blobseer::NumPages;
using blobseer::ParentBlock;
using blobseer::RightChildBlock;
using blobseer::RootSizeBytes;
using blobseer::TreeDepth;
using blobseer::UpdateBorderBlocks;
using blobseer::UpdateNodeSet;

}  // namespace blobseer::meta

#endif  // BLOBSEER_META_LAYOUT_H_
