// Metadata tree node representation and its DHT encoding.
#ifndef BLOBSEER_META_NODE_H_
#define BLOBSEER_META_NODE_H_

#include <string>
#include <vector>

#include "common/serde.h"
#include "common/types.h"

namespace blobseer::meta {

/// Chain length marker meaning "previous leaf was unpublished at write time,
/// length unknown" (see DESIGN.md section 3.2).
inline constexpr uint32_t kUnknownChainLen = 0;

/// Identifies one tree node: a node is immutable once written, keyed by the
/// blob that *created* it (branches resolve versions to origin blobs), the
/// snapshot version that created it and the block it covers.
struct NodeKey {
  BlobId origin = kInvalidBlobId;
  Version version = kNoVersion;
  Extent block;

  friend bool operator==(const NodeKey&, const NodeKey&) = default;
  friend auto operator<=>(const NodeKey&, const NodeKey&) = default;

  /// Serialized form used as the DHT key.
  std::string ToDhtKey() const;
  std::string ToString() const;
};

/// One stored fragment of a logical page: `len` bytes that live at
/// `data_off` within page object `pid` and land at `page_off` within the
/// logical page. Aligned writes produce exactly one full-page fragment.
/// Format v3 stores only the stable PageId; readers resolve the current
/// replica set through the location index (locator::LocationIndex), so the
/// failure detector can move replicas without rewriting metadata.
struct PageFragment {
  PageId pid;
  /// Replica set embedded by pre-indirection formats (v1: one provider,
  /// v2: the full set). Empty on v3 fragments. Never re-encoded — readers
  /// use it only to seed the location index for pages written before the
  /// indirection existed.
  std::vector<ProviderId> legacy_providers;
  uint32_t page_off = 0;
  uint32_t len = 0;
  uint32_t data_off = 0;

  friend bool operator==(const PageFragment&, const PageFragment&) = default;

  void EncodeTo(BinaryWriter* w) const;
  Status DecodeFrom(BinaryReader* r);
  /// Format v2 fragment body: PageId plus embedded replica set.
  Status DecodeV2From(BinaryReader* r);
  /// Pre-replication (format v1) fragment body: a single provider id.
  Status DecodeLegacyFrom(BinaryReader* r);
};

/// Wire-format version markers for MetaNode (see EncodeTo/DecodeFrom).
/// Format v1 had no marker: its first byte was the node type (0 or 1).
/// Format v2 prefixes a tag and embeds a replica-set provider list per leaf
/// fragment. Format v3 drops the embedded providers — fragments carry only
/// the stable PageId and the location index maps it to the current replica
/// set. Decoding accepts all three so existing DHT contents stay readable.
inline constexpr uint8_t kNodeFormatV2 = 2;
inline constexpr uint8_t kNodeFormatV3 = 3;

/// A tree node. Inner nodes carry the version labels of their two children
/// (kNoVersion marks a never-written hole). Leaves carry the fragments this
/// update wrote into the page plus a link to the previous leaf version for
/// the bytes it did not cover (unaligned updates).
struct MetaNode {
  enum class Type : uint8_t { kInner = 0, kLeaf = 1 };

  Type type = Type::kInner;
  // Inner node fields.
  Version left_version = kNoVersion;
  Version right_version = kNoVersion;
  // Leaf fields.
  Version prev_version = kNoVersion;
  uint32_t chain_len = 1;
  std::vector<PageFragment> fragments;

  bool is_leaf() const { return type == Type::kLeaf; }

  static MetaNode Inner(Version left, Version right) {
    MetaNode n;
    n.type = Type::kInner;
    n.left_version = left;
    n.right_version = right;
    return n;
  }
  static MetaNode Leaf(std::vector<PageFragment> fragments, Version prev,
                       uint32_t chain_len) {
    MetaNode n;
    n.type = Type::kLeaf;
    n.fragments = std::move(fragments);
    n.prev_version = prev;
    n.chain_len = chain_len;
    return n;
  }

  void EncodeTo(BinaryWriter* w) const;
  Status DecodeFrom(BinaryReader* r);

  std::string ToString() const;
};

}  // namespace blobseer::meta

#endif  // BLOBSEER_META_NODE_H_
