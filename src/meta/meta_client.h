// Client-side metadata engine: reads and writes segment-tree nodes in the
// DHT, walks trees for READ, and resolves border-node versions against
// published snapshots (paper section 4.2).
#ifndef BLOBSEER_META_META_CLIENT_H_
#define BLOBSEER_META_META_CLIENT_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/blob_descriptor.h"
#include "common/executor.h"
#include "common/future.h"
#include "common/result.h"
#include "dht/client.h"
#include "meta/layout.h"
#include "meta/node.h"

namespace blobseer::meta {

struct MetaClientOptions {
  /// Tree nodes are immutable, so they are freely cacheable. The cache
  /// accelerates border descents and repeated reads; benchmarks can disable
  /// it to measure raw metadata traffic (Figure 2(a) runs cache-off).
  bool cache_enabled = true;
  size_t cache_capacity = 1 << 16;  // nodes
  /// Parallel DHT requests per tree level / node batch.
  size_t fanout = 16;
};

struct MetaCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t puts = 0;
};

/// A leaf reached by a tree walk: the page block it covers, the version
/// label that owns it, and its content.
struct LeafRef {
  Extent block;
  Version version = kNoVersion;
  MetaNode node;
};

class MetaClient {
 public:
  MetaClient(dht::DhtClient* dht, Executor* executor,
             MetaClientOptions options = {});

  /// Stores one node (and caches it: the writer is the likeliest next
  /// reader during subsequent border descents).
  Status PutNode(const NodeKey& key, const MetaNode& node);

  /// Fetches one node, through the cache.
  Result<MetaNode> GetNode(const NodeKey& key);

  /// Writes a batch of nodes in parallel (paper Algorithm 4, final loop).
  Status WriteNodes(const std::vector<std::pair<NodeKey, MetaNode>>& nodes);

  /// Paper Algorithm 3 (READ_META): collects every leaf of snapshot
  /// `version` whose page block intersects `range`. Levels are fetched in
  /// parallel waves of `fanout`.
  Status ReadMeta(const BranchAncestry& ancestry, Version version,
                  uint64_t blob_size, uint64_t psize, const Extent& range,
                  std::vector<LeafRef>* leaves);

  /// Per-operation node memo: a writer resolving several border blocks of
  /// one update descends overlapping root-to-block paths, so nodes fetched
  /// once are reused across the whole BUILD_META (the paper computes the
  /// border set in a single descent; this keeps that cost at O(depth)
  /// fetches even with the global cache disabled).
  using NodeMemo = std::unordered_map<std::string, MetaNode>;

  /// Resolves the version label of `block` within published snapshot
  /// (`published`, `published_size`) by descending from its root.
  /// Returns kNoVersion when the block lies beyond the published span or
  /// under a never-written hole. Fails with Internal when the block
  /// strictly contains the published root (such blocks must come from the
  /// version manager's partial border set).
  Result<Version> ResolveBlockVersion(const BranchAncestry& ancestry,
                                      Version published,
                                      uint64_t published_size, uint64_t psize,
                                      const Extent& block,
                                      NodeMemo* memo = nullptr);

  /// GetNode through an optional per-operation memo.
  Result<MetaNode> GetNodeMemoized(const NodeKey& key, NodeMemo* memo);

  /// Thread-safe per-operation memo for the async paths: one update's
  /// border resolutions run as concurrent continuation chains that share
  /// fetched nodes.
  struct SharedNodeMemo {
    std::mutex mu;
    NodeMemo map;
  };

  /// Async variants of the node and tree operations. Continuations resolve
  /// on the DHT transport's completion context; cache hits resolve
  /// immediately on the calling thread.
  Future<Unit> PutNodeAsync(const NodeKey& key, const MetaNode& node);
  Future<MetaNode> GetNodeAsync(const NodeKey& key);
  Future<MetaNode> GetNodeMemoizedAsync(const NodeKey& key,
                                        std::shared_ptr<SharedNodeMemo> memo);
  /// All puts are issued at once; per-endpoint pipelining bounds the real
  /// parallelism (the sync path instead fans out `fanout`-wide).
  Future<Unit> WriteNodesAsync(
      std::vector<std::pair<NodeKey, MetaNode>> nodes);
  Future<std::vector<LeafRef>> ReadMetaAsync(const BranchAncestry& ancestry,
                                             Version version,
                                             uint64_t blob_size,
                                             uint64_t psize,
                                             const Extent& range);
  Future<Version> ResolveBlockVersionAsync(
      const BranchAncestry& ancestry, Version published,
      uint64_t published_size, uint64_t psize, const Extent& block,
      std::shared_ptr<SharedNodeMemo> memo);

  void InvalidateCache();
  MetaCacheStats GetCacheStats() const;
  void set_cache_enabled(bool enabled);

 private:
  void CacheInsert(const std::string& key, const MetaNode& node);
  bool CacheLookup(const std::string& key, MetaNode* node);

  dht::DhtClient* dht_;
  Executor* executor_;
  MetaClientOptions options_;

  mutable std::mutex cache_mu_;
  // LRU: most-recent at front.
  std::list<std::pair<std::string, MetaNode>> lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, MetaNode>>::iterator>
      cache_;
  MetaCacheStats cache_stats_;
};

}  // namespace blobseer::meta

#endif  // BLOBSEER_META_META_CLIENT_H_
