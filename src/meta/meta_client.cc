#include "meta/meta_client.h"

#include "common/logging.h"

namespace blobseer::meta {

MetaClient::MetaClient(dht::DhtClient* dht, Executor* executor,
                       MetaClientOptions options)
    : dht_(dht), executor_(executor), options_(options) {}

void MetaClient::CacheInsert(const std::string& key, const MetaNode& node) {
  if (!options_.cache_enabled) return;
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, node);
  cache_[key] = lru_.begin();
  cache_stats_.puts++;
  while (cache_.size() > options_.cache_capacity) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

bool MetaClient::CacheLookup(const std::string& key, MetaNode* node) {
  if (!options_.cache_enabled) return false;
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    cache_stats_.misses++;
    return false;
  }
  cache_stats_.hits++;
  lru_.splice(lru_.begin(), lru_, it->second);
  *node = it->second->second;
  return true;
}

Status MetaClient::PutNode(const NodeKey& key, const MetaNode& node) {
  BinaryWriter w;
  node.EncodeTo(&w);
  std::string k = key.ToDhtKey();
  BS_RETURN_NOT_OK(dht_->Put(Slice(k), Slice(w.buffer())));
  CacheInsert(k, node);
  return Status::OK();
}

Result<MetaNode> MetaClient::GetNode(const NodeKey& key) {
  std::string k = key.ToDhtKey();
  MetaNode node;
  if (CacheLookup(k, &node)) return node;
  std::string raw;
  Status s = dht_->Get(Slice(k), &raw);
  if (!s.ok()) return s.WithContext("metadata node " + key.ToString());
  BinaryReader r{Slice(raw)};
  BS_RETURN_NOT_OK(node.DecodeFrom(&r));
  BS_RETURN_NOT_OK(r.ExpectEnd());
  CacheInsert(k, node);
  return node;
}

Status MetaClient::WriteNodes(
    const std::vector<std::pair<NodeKey, MetaNode>>& nodes) {
  return executor_->ParallelFor(
      nodes.size(), options_.fanout,
      [&](size_t i) { return PutNode(nodes[i].first, nodes[i].second); });
}

Status MetaClient::ReadMeta(const BranchAncestry& ancestry, Version version,
                            uint64_t blob_size, uint64_t psize,
                            const Extent& range,
                            std::vector<LeafRef>* leaves) {
  leaves->clear();
  if (range.size == 0) return Status::OK();
  if (version == 0 || blob_size == 0)
    return Status::OutOfRange("read from empty snapshot");
  if (range.end() > blob_size)
    return Status::OutOfRange("read beyond snapshot size");

  struct Frontier {
    Extent block;
    Version version;
  };
  std::vector<Frontier> frontier{
      {Extent{0, RootSizeBytes(blob_size, psize)}, version}};
  std::vector<MetaNode> fetched;

  while (!frontier.empty()) {
    fetched.assign(frontier.size(), MetaNode{});
    Status s = executor_->ParallelFor(
        frontier.size(), options_.fanout, [&](size_t i) {
          NodeKey key{ancestry.Resolve(frontier[i].version),
                      frontier[i].version, frontier[i].block};
          auto node = GetNode(key);
          if (!node.ok()) return node.status();
          fetched[i] = std::move(node).ValueUnsafe();
          return Status::OK();
        });
    BS_RETURN_NOT_OK(s);

    std::vector<Frontier> next;
    for (size_t i = 0; i < frontier.size(); i++) {
      const Frontier& f = frontier[i];
      const MetaNode& node = fetched[i];
      if (IsLeafBlock(f.block, psize)) {
        if (!node.is_leaf())
          return Status::Corruption("inner node at leaf block " +
                                    f.block.ToString());
        leaves->push_back(LeafRef{f.block, f.version, node});
        continue;
      }
      if (node.is_leaf())
        return Status::Corruption("leaf node at inner block " +
                                  f.block.ToString());
      Extent left = LeftChildBlock(f.block);
      Extent right = RightChildBlock(f.block);
      if (left.Intersects(range)) {
        if (node.left_version == kNoVersion)
          return Status::Corruption("hole in read range at " +
                                    left.ToString());
        next.push_back(Frontier{left, node.left_version});
      }
      if (right.Intersects(range)) {
        if (node.right_version == kNoVersion)
          return Status::Corruption("hole in read range at " +
                                    right.ToString());
        next.push_back(Frontier{right, node.right_version});
      }
    }
    frontier = std::move(next);
  }
  return Status::OK();
}

Future<Unit> MetaClient::PutNodeAsync(const NodeKey& key,
                                      const MetaNode& node) {
  BinaryWriter w;
  node.EncodeTo(&w);
  std::string k = key.ToDhtKey();
  return dht_->PutAsync(Slice(k), Slice(w.buffer()))
      .Then([this, k, node](Result<Unit> r) -> Status {
        if (!r.ok()) return r.status();
        CacheInsert(k, node);
        return Status::OK();
      });
}

Future<MetaNode> MetaClient::GetNodeAsync(const NodeKey& key) {
  std::string k = key.ToDhtKey();
  MetaNode cached;
  if (CacheLookup(k, &cached))
    return MakeReadyFuture<MetaNode>(std::move(cached));
  return dht_->GetAsync(Slice(k)).Then(
      [this, k, key](Result<std::string> raw) -> Result<MetaNode> {
        if (!raw.ok())
          return raw.status().WithContext("metadata node " + key.ToString());
        MetaNode node;
        BinaryReader r{Slice(*raw)};
        BS_RETURN_NOT_OK(node.DecodeFrom(&r));
        BS_RETURN_NOT_OK(r.ExpectEnd());
        CacheInsert(k, node);
        return node;
      });
}

Future<MetaNode> MetaClient::GetNodeMemoizedAsync(
    const NodeKey& key, std::shared_ptr<SharedNodeMemo> memo) {
  if (!memo) return GetNodeAsync(key);
  std::string k = key.ToDhtKey();
  {
    std::lock_guard<std::mutex> lock(memo->mu);
    auto it = memo->map.find(k);
    if (it != memo->map.end())
      return MakeReadyFuture<MetaNode>(MetaNode(it->second));
  }
  return GetNodeAsync(key).Then(
      [memo, k](Result<MetaNode> node) -> Result<MetaNode> {
        if (node.ok()) {
          std::lock_guard<std::mutex> lock(memo->mu);
          memo->map.emplace(k, *node);
        }
        return node;
      });
}

Future<Unit> MetaClient::WriteNodesAsync(
    std::vector<std::pair<NodeKey, MetaNode>> nodes) {
  std::vector<Future<Unit>> puts;
  puts.reserve(nodes.size());
  for (const auto& [key, node] : nodes) {
    puts.push_back(PutNodeAsync(key, node));
  }
  return WhenAll(std::move(puts))
      .Then([](Result<std::vector<Result<Unit>>> all) -> Status {
        if (!all.ok()) return all.status();
        return FirstError(*all);
      });
}

Future<std::vector<LeafRef>> MetaClient::ReadMetaAsync(
    const BranchAncestry& ancestry, Version version, uint64_t blob_size,
    uint64_t psize, const Extent& range) {
  using Out = std::vector<LeafRef>;
  if (range.size == 0) return MakeReadyFuture<Out>(Out{});
  if (version == 0 || blob_size == 0)
    return MakeReadyFuture<Out>(Status::OutOfRange("read from empty snapshot"));
  if (range.end() > blob_size)
    return MakeReadyFuture<Out>(
        Status::OutOfRange("read beyond snapshot size"));

  // Level-wise descent: fetch the whole frontier in one parallel wave, then
  // expand it, until only leaves remain. State is shared across waves.
  struct Frontier {
    Extent block;
    Version version;
  };
  struct WalkOp {
    MetaClient* mc;
    BranchAncestry ancestry;
    uint64_t psize;
    Extent range;
    std::vector<Frontier> frontier;
    Out leaves;
    Promise<Out> promise;

    void Step(const std::shared_ptr<WalkOp>& self) {
      if (frontier.empty()) {
        promise.Set(std::move(leaves));
        return;
      }
      std::vector<Future<MetaNode>> fetches;
      fetches.reserve(frontier.size());
      for (const Frontier& f : frontier) {
        fetches.push_back(mc->GetNodeAsync(
            NodeKey{ancestry.Resolve(f.version), f.version, f.block}));
      }
      WhenAll(std::move(fetches))
          .OnReady(nullptr, [self](Result<std::vector<Result<MetaNode>>> all) {
            Status first = all.ok() ? FirstError(*all) : all.status();
            if (!first.ok()) {
              self->promise.Set(std::move(first));
              return;
            }
            std::vector<Frontier> next;
            for (size_t i = 0; i < self->frontier.size(); i++) {
              const Frontier& f = self->frontier[i];
              const MetaNode& node = *(*all)[i];
              if (IsLeafBlock(f.block, self->psize)) {
                if (!node.is_leaf()) {
                  self->promise.Set(Status::Corruption(
                      "inner node at leaf block " + f.block.ToString()));
                  return;
                }
                self->leaves.push_back(LeafRef{f.block, f.version, node});
                continue;
              }
              if (node.is_leaf()) {
                self->promise.Set(Status::Corruption(
                    "leaf node at inner block " + f.block.ToString()));
                return;
              }
              Extent left = LeftChildBlock(f.block);
              Extent right = RightChildBlock(f.block);
              if (left.Intersects(self->range)) {
                if (node.left_version == kNoVersion) {
                  self->promise.Set(Status::Corruption(
                      "hole in read range at " + left.ToString()));
                  return;
                }
                next.push_back(Frontier{left, node.left_version});
              }
              if (right.Intersects(self->range)) {
                if (node.right_version == kNoVersion) {
                  self->promise.Set(Status::Corruption(
                      "hole in read range at " + right.ToString()));
                  return;
                }
                next.push_back(Frontier{right, node.right_version});
              }
            }
            self->frontier = std::move(next);
            self->Step(self);
          });
    }
  };
  auto op = std::make_shared<WalkOp>();
  op->mc = this;
  op->ancestry = ancestry;
  op->psize = psize;
  op->range = range;
  op->frontier.push_back(
      Frontier{Extent{0, RootSizeBytes(blob_size, psize)}, version});
  auto f = op->promise.GetFuture();
  op->Step(op);
  return f;
}

Future<Version> MetaClient::ResolveBlockVersionAsync(
    const BranchAncestry& ancestry, Version published,
    uint64_t published_size, uint64_t psize, const Extent& block,
    std::shared_ptr<SharedNodeMemo> memo) {
  if (published == 0 || published_size == 0)
    return MakeReadyFuture<Version>(Version{kNoVersion});
  Extent root{0, RootSizeBytes(published_size, psize)};
  if (block == root) return MakeReadyFuture<Version>(Version{published});
  if (block.offset >= root.size)
    return MakeReadyFuture<Version>(Version{kNoVersion});
  if (block.size >= root.size)
    return MakeReadyFuture<Version>(Status::Internal(
        "border block contains published root; must be supplied by the "
        "version manager: " +
        block.ToString()));

  // Root-to-block descent, one async node fetch per level.
  struct DescentOp {
    MetaClient* mc;
    BranchAncestry ancestry;
    Extent block;
    Extent cur;
    Version cur_version;
    std::shared_ptr<SharedNodeMemo> memo;
    Promise<Version> promise;

    void Step(const std::shared_ptr<DescentOp>& self) {
      if (cur == block) {
        promise.Set(Version{cur_version});
        return;
      }
      NodeKey key{ancestry.Resolve(cur_version), cur_version, cur};
      mc->GetNodeMemoizedAsync(key, memo)
          .OnReady(nullptr, [self](Result<MetaNode> node) {
            if (!node.ok()) {
              self->promise.Set(node.status());
              return;
            }
            if (node->is_leaf()) {
              self->promise.Set(Status::Corruption(
                  "unexpected leaf during descent at " +
                  self->cur.ToString()));
              return;
            }
            Extent left = LeftChildBlock(self->cur);
            Version next_version;
            Extent next;
            if (left.Contains(self->block)) {
              next = left;
              next_version = node->left_version;
            } else {
              next = RightChildBlock(self->cur);
              next_version = node->right_version;
            }
            if (next_version == kNoVersion) {
              self->promise.Set(Version{kNoVersion});  // hole
              return;
            }
            self->cur = next;
            self->cur_version = next_version;
            self->Step(self);
          });
    }
  };
  auto op = std::make_shared<DescentOp>();
  op->mc = this;
  op->ancestry = ancestry;
  op->block = block;
  op->cur = root;
  op->cur_version = published;
  op->memo = std::move(memo);
  auto f = op->promise.GetFuture();
  op->Step(op);
  return f;
}

Result<MetaNode> MetaClient::GetNodeMemoized(const NodeKey& key,
                                             NodeMemo* memo) {
  if (!memo) return GetNode(key);
  std::string k = key.ToDhtKey();
  auto it = memo->find(k);
  if (it != memo->end()) return it->second;
  auto node = GetNode(key);
  if (node.ok()) memo->emplace(std::move(k), *node);
  return node;
}

Result<Version> MetaClient::ResolveBlockVersion(const BranchAncestry& ancestry,
                                                Version published,
                                                uint64_t published_size,
                                                uint64_t psize,
                                                const Extent& block,
                                                NodeMemo* memo) {
  if (published == 0 || published_size == 0) return kNoVersion;
  Extent root{0, RootSizeBytes(published_size, psize)};
  if (block == root) return published;
  if (block.offset >= root.size) return kNoVersion;  // beyond published span
  if (block.size >= root.size)
    return Status::Internal(
        "border block contains published root; must be supplied by the "
        "version manager: " +
        block.ToString());

  Extent cur = root;
  Version cur_version = published;
  while (cur != block) {
    NodeKey key{ancestry.Resolve(cur_version), cur_version, cur};
    auto node = GetNodeMemoized(key, memo);
    if (!node.ok()) return node.status();
    if (node->is_leaf())
      return Status::Corruption("unexpected leaf during descent at " +
                                cur.ToString());
    Extent left = LeftChildBlock(cur);
    Version next_version;
    Extent next;
    if (left.Contains(block)) {
      next = left;
      next_version = node->left_version;
    } else {
      next = RightChildBlock(cur);
      next_version = node->right_version;
    }
    if (next_version == kNoVersion) return kNoVersion;  // hole
    cur = next;
    cur_version = next_version;
  }
  return cur_version;
}

void MetaClient::InvalidateCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.clear();
  lru_.clear();
}

MetaCacheStats MetaClient::GetCacheStats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_stats_;
}

void MetaClient::set_cache_enabled(bool enabled) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    options_.cache_enabled = enabled;
  }
  if (!enabled) InvalidateCache();
}

}  // namespace blobseer::meta
