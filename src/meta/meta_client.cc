#include "meta/meta_client.h"

#include "common/logging.h"

namespace blobseer::meta {

MetaClient::MetaClient(dht::DhtClient* dht, Executor* executor,
                       MetaClientOptions options)
    : dht_(dht), executor_(executor), options_(options) {}

void MetaClient::CacheInsert(const std::string& key, const MetaNode& node) {
  if (!options_.cache_enabled) return;
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, node);
  cache_[key] = lru_.begin();
  cache_stats_.puts++;
  while (cache_.size() > options_.cache_capacity) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

bool MetaClient::CacheLookup(const std::string& key, MetaNode* node) {
  if (!options_.cache_enabled) return false;
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    cache_stats_.misses++;
    return false;
  }
  cache_stats_.hits++;
  lru_.splice(lru_.begin(), lru_, it->second);
  *node = it->second->second;
  return true;
}

Status MetaClient::PutNode(const NodeKey& key, const MetaNode& node) {
  BinaryWriter w;
  node.EncodeTo(&w);
  std::string k = key.ToDhtKey();
  BS_RETURN_NOT_OK(dht_->Put(Slice(k), Slice(w.buffer())));
  CacheInsert(k, node);
  return Status::OK();
}

Result<MetaNode> MetaClient::GetNode(const NodeKey& key) {
  std::string k = key.ToDhtKey();
  MetaNode node;
  if (CacheLookup(k, &node)) return node;
  std::string raw;
  Status s = dht_->Get(Slice(k), &raw);
  if (!s.ok()) return s.WithContext("metadata node " + key.ToString());
  BinaryReader r{Slice(raw)};
  BS_RETURN_NOT_OK(node.DecodeFrom(&r));
  BS_RETURN_NOT_OK(r.ExpectEnd());
  CacheInsert(k, node);
  return node;
}

Status MetaClient::WriteNodes(
    const std::vector<std::pair<NodeKey, MetaNode>>& nodes) {
  return executor_->ParallelFor(
      nodes.size(), options_.fanout,
      [&](size_t i) { return PutNode(nodes[i].first, nodes[i].second); });
}

Status MetaClient::ReadMeta(const BranchAncestry& ancestry, Version version,
                            uint64_t blob_size, uint64_t psize,
                            const Extent& range,
                            std::vector<LeafRef>* leaves) {
  leaves->clear();
  if (range.size == 0) return Status::OK();
  if (version == 0 || blob_size == 0)
    return Status::OutOfRange("read from empty snapshot");
  if (range.end() > blob_size)
    return Status::OutOfRange("read beyond snapshot size");

  struct Frontier {
    Extent block;
    Version version;
  };
  std::vector<Frontier> frontier{
      {Extent{0, RootSizeBytes(blob_size, psize)}, version}};
  std::vector<MetaNode> fetched;

  while (!frontier.empty()) {
    fetched.assign(frontier.size(), MetaNode{});
    Status s = executor_->ParallelFor(
        frontier.size(), options_.fanout, [&](size_t i) {
          NodeKey key{ancestry.Resolve(frontier[i].version),
                      frontier[i].version, frontier[i].block};
          auto node = GetNode(key);
          if (!node.ok()) return node.status();
          fetched[i] = std::move(node).ValueUnsafe();
          return Status::OK();
        });
    BS_RETURN_NOT_OK(s);

    std::vector<Frontier> next;
    for (size_t i = 0; i < frontier.size(); i++) {
      const Frontier& f = frontier[i];
      const MetaNode& node = fetched[i];
      if (IsLeafBlock(f.block, psize)) {
        if (!node.is_leaf())
          return Status::Corruption("inner node at leaf block " +
                                    f.block.ToString());
        leaves->push_back(LeafRef{f.block, f.version, node});
        continue;
      }
      if (node.is_leaf())
        return Status::Corruption("leaf node at inner block " +
                                  f.block.ToString());
      Extent left = LeftChildBlock(f.block);
      Extent right = RightChildBlock(f.block);
      if (left.Intersects(range)) {
        if (node.left_version == kNoVersion)
          return Status::Corruption("hole in read range at " +
                                    left.ToString());
        next.push_back(Frontier{left, node.left_version});
      }
      if (right.Intersects(range)) {
        if (node.right_version == kNoVersion)
          return Status::Corruption("hole in read range at " +
                                    right.ToString());
        next.push_back(Frontier{right, node.right_version});
      }
    }
    frontier = std::move(next);
  }
  return Status::OK();
}

Result<MetaNode> MetaClient::GetNodeMemoized(const NodeKey& key,
                                             NodeMemo* memo) {
  if (!memo) return GetNode(key);
  std::string k = key.ToDhtKey();
  auto it = memo->find(k);
  if (it != memo->end()) return it->second;
  auto node = GetNode(key);
  if (node.ok()) memo->emplace(std::move(k), *node);
  return node;
}

Result<Version> MetaClient::ResolveBlockVersion(const BranchAncestry& ancestry,
                                                Version published,
                                                uint64_t published_size,
                                                uint64_t psize,
                                                const Extent& block,
                                                NodeMemo* memo) {
  if (published == 0 || published_size == 0) return kNoVersion;
  Extent root{0, RootSizeBytes(published_size, psize)};
  if (block == root) return published;
  if (block.offset >= root.size) return kNoVersion;  // beyond published span
  if (block.size >= root.size)
    return Status::Internal(
        "border block contains published root; must be supplied by the "
        "version manager: " +
        block.ToString());

  Extent cur = root;
  Version cur_version = published;
  while (cur != block) {
    NodeKey key{ancestry.Resolve(cur_version), cur_version, cur};
    auto node = GetNodeMemoized(key, memo);
    if (!node.ok()) return node.status();
    if (node->is_leaf())
      return Status::Corruption("unexpected leaf during descent at " +
                                cur.ToString());
    Extent left = LeftChildBlock(cur);
    Version next_version;
    Extent next;
    if (left.Contains(block)) {
      next = left;
      next_version = node->left_version;
    } else {
      next = RightChildBlock(cur);
      next_version = node->right_version;
    }
    if (next_version == kNoVersion) return kNoVersion;  // hole
    cur = next;
    cur_version = next_version;
  }
  return cur_version;
}

void MetaClient::InvalidateCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.clear();
  lru_.clear();
}

MetaCacheStats MetaClient::GetCacheStats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_stats_;
}

void MetaClient::set_cache_enabled(bool enabled) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    options_.cache_enabled = enabled;
  }
  if (!enabled) InvalidateCache();
}

}  // namespace blobseer::meta
