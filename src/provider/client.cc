#include "provider/client.h"

#include "provider/messages.h"
#include "rpc/call.h"

namespace blobseer::provider {

ProviderClient::ProviderClient(rpc::Transport* transport,
                               size_t channels_per_endpoint)
    : pool_(transport, channels_per_endpoint) {}

Status ProviderClient::WritePage(const std::string& address, const PageId& pid,
                                 Slice data) {
  auto ch = pool_.Get(address);
  if (!ch.ok()) return ch.status();
  WriteRequest req;
  req.pid = pid;
  req.data = data.ToString();
  WriteResponse rsp;
  return rpc::CallMethod(ch->get(), rpc::Method::kProviderWrite, req, &rsp);
}

Status ProviderClient::ReadPage(const std::string& address, const PageId& pid,
                                uint64_t offset, uint64_t len,
                                std::string* out) {
  auto ch = pool_.Get(address);
  if (!ch.ok()) return ch.status();
  ReadRequest req{pid, offset, len};
  ReadResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kProviderRead, req, &rsp));
  *out = std::move(rsp.data);
  return Status::OK();
}

Status ProviderClient::DeletePage(const std::string& address,
                                  const PageId& pid) {
  auto ch = pool_.Get(address);
  if (!ch.ok()) return ch.status();
  DeleteRequest req{pid};
  DeleteResponse rsp;
  return rpc::CallMethod(ch->get(), rpc::Method::kProviderDelete, req, &rsp);
}

Status ProviderClient::Stats(const std::string& address, uint64_t* pages,
                             uint64_t* bytes) {
  auto st = FetchStats(address);
  if (!st.ok()) return st.status();
  *pages = st->pages;
  *bytes = st->bytes;
  return Status::OK();
}

Result<PageStoreStats> ProviderClient::FetchStats(const std::string& address) {
  auto ch = pool_.Get(address);
  if (!ch.ok()) return ch.status();
  StatsRequest req;
  StatsResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kProviderStats, req, &rsp));
  PageStoreStats st;
  st.pages = rsp.pages;
  st.bytes = rsp.bytes;
  st.writes = rsp.writes;
  st.reads = rsp.reads;
  st.deletes = rsp.deletes;
  st.segments = rsp.segments;
  st.dead_bytes = rsp.dead_bytes;
  st.syncs = rsp.syncs;
  st.compactions = rsp.compactions;
  return st;
}

Future<Unit> ProviderClient::WritePageAsync(const std::string& address,
                                            const PageId& pid, Slice data) {
  auto ch = pool_.Get(address);
  if (!ch.ok()) return MakeReadyFuture(ch.status());
  WriteRequest req;
  req.pid = pid;
  req.data = data.ToString();
  return rpc::CallMethodAsync<WriteRequest, WriteResponse>(
             ch->get(), rpc::Method::kProviderWrite, req)
      .Then([](Result<WriteResponse> rsp) { return rsp.status(); });
}

Future<std::string> ProviderClient::ReadPageAsync(const std::string& address,
                                                  const PageId& pid,
                                                  uint64_t offset,
                                                  uint64_t len) {
  auto ch = pool_.Get(address);
  if (!ch.ok()) return MakeReadyFuture<std::string>(ch.status());
  return rpc::CallMethodAsync<ReadRequest, ReadResponse>(
             ch->get(), rpc::Method::kProviderRead,
             ReadRequest{pid, offset, len})
      .Then([](Result<ReadResponse> rsp) -> Result<std::string> {
        if (!rsp.ok()) return rsp.status();
        return std::move(rsp->data);
      });
}

Future<Unit> ProviderClient::DeletePageAsync(const std::string& address,
                                             const PageId& pid) {
  auto ch = pool_.Get(address);
  if (!ch.ok()) return MakeReadyFuture(ch.status());
  return rpc::CallMethodAsync<DeleteRequest, DeleteResponse>(
             ch->get(), rpc::Method::kProviderDelete, DeleteRequest{pid})
      .Then([](Result<DeleteResponse> rsp) { return rsp.status(); });
}

}  // namespace blobseer::provider
