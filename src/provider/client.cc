#include "provider/client.h"

#include <memory>

#include "provider/messages.h"
#include "rpc/call.h"

namespace blobseer::provider {

namespace {

// Reconnect-once on Unavailable for binding transports: a channel pooled
// before a provider restart keeps failing even once the provider serves
// again, turning every read into a failover. Page operations are idempotent
// (pages are immutable and deletes tolerate repeats), so retrying on a
// fresh connection is safe. Simnet opts out via binds_at_connect() — its
// failure model must not gain hidden retries.
template <typename Req, typename Rsp>
Status CallProvider(rpc::ChannelPool* pool, const std::string& address,
                    rpc::Method method, const Req& req, Rsp* rsp) {
  auto ch = pool->Get(address);
  if (!ch.ok()) return ch.status();
  Status s = rpc::CallMethod(ch->get(), method, req, rsp);
  if (!s.IsUnavailable() || !pool->binding()) return s;
  pool->Invalidate(address);
  ch = pool->Get(address);
  if (!ch.ok()) return s;
  *rsp = Rsp{};
  return rpc::CallMethod(ch->get(), method, req, rsp);
}

template <typename Req, typename Rsp>
Future<Rsp> CallProviderAsync(rpc::ChannelPool* pool,
                              const std::string& address, rpc::Method method,
                              Req req) {
  auto ch = pool->Get(address);
  if (!ch.ok()) return MakeReadyFuture<Rsp>(ch.status());
  auto shared = std::make_shared<Req>(std::move(req));
  return rpc::CallMethodAsync<Req, Rsp>(ch->get(), method, *shared)
      .Then([pool, address, method, shared](Result<Rsp> r) -> Future<Rsp> {
        if (r.ok() || !r.status().IsUnavailable() || !pool->binding())
          return MakeReadyFuture<Rsp>(std::move(r));
        pool->Invalidate(address);
        auto retry = pool->Get(address);
        if (!retry.ok()) return MakeReadyFuture<Rsp>(std::move(r));
        return rpc::CallMethodAsync<Req, Rsp>(retry->get(), method, *shared);
      });
}

}  // namespace

ProviderClient::ProviderClient(rpc::Transport* transport,
                               size_t channels_per_endpoint)
    : pool_(transport, channels_per_endpoint) {}

Status ProviderClient::WritePage(const std::string& address, const PageId& pid,
                                 Slice data) {
  WriteRequest req;
  req.pid = pid;
  req.data = data.ToString();
  WriteResponse rsp;
  return CallProvider(&pool_, address, rpc::Method::kProviderWrite, req, &rsp);
}

Status ProviderClient::ReadPage(const std::string& address, const PageId& pid,
                                uint64_t offset, uint64_t len,
                                std::string* out) {
  ReadRequest req{pid, offset, len};
  ReadResponse rsp;
  BS_RETURN_NOT_OK(
      CallProvider(&pool_, address, rpc::Method::kProviderRead, req, &rsp));
  *out = std::move(rsp.data);
  return Status::OK();
}

Status ProviderClient::DeletePage(const std::string& address,
                                  const PageId& pid) {
  DeleteRequest req{pid};
  DeleteResponse rsp;
  return CallProvider(&pool_, address, rpc::Method::kProviderDelete, req,
                      &rsp);
}

Status ProviderClient::Stats(const std::string& address, uint64_t* pages,
                             uint64_t* bytes) {
  auto st = FetchStats(address);
  if (!st.ok()) return st.status();
  *pages = st->pages;
  *bytes = st->bytes;
  return Status::OK();
}

Result<PageStoreStats> ProviderClient::FetchStats(const std::string& address) {
  StatsRequest req;
  StatsResponse rsp;
  BS_RETURN_NOT_OK(
      CallProvider(&pool_, address, rpc::Method::kProviderStats, req, &rsp));
  PageStoreStats st;
  st.pages = rsp.pages;
  st.bytes = rsp.bytes;
  st.writes = rsp.writes;
  st.reads = rsp.reads;
  st.deletes = rsp.deletes;
  st.segments = rsp.segments;
  st.dead_bytes = rsp.dead_bytes;
  st.syncs = rsp.syncs;
  st.compactions = rsp.compactions;
  st.io_submissions = rsp.io_submissions;
  st.io_sqes = rsp.io_sqes;
  st.bytes_written = rsp.bytes_written;
  st.read_syscalls = rsp.read_syscalls;
  st.recovery_us = rsp.recovery_us;
  return st;
}

Future<Unit> ProviderClient::WritePageAsync(const std::string& address,
                                            const PageId& pid, Slice data) {
  WriteRequest req;
  req.pid = pid;
  req.data = data.ToString();
  return CallProviderAsync<WriteRequest, WriteResponse>(
             &pool_, address, rpc::Method::kProviderWrite, std::move(req))
      .Then([](Result<WriteResponse> rsp) { return rsp.status(); });
}

Future<std::string> ProviderClient::ReadPageAsync(const std::string& address,
                                                  const PageId& pid,
                                                  uint64_t offset,
                                                  uint64_t len) {
  return CallProviderAsync<ReadRequest, ReadResponse>(
             &pool_, address, rpc::Method::kProviderRead,
             ReadRequest{pid, offset, len})
      .Then([](Result<ReadResponse> rsp) -> Result<std::string> {
        if (!rsp.ok()) return rsp.status();
        return std::move(rsp->data);
      });
}

Future<Unit> ProviderClient::DeletePageAsync(const std::string& address,
                                             const PageId& pid) {
  return CallProviderAsync<DeleteRequest, DeleteResponse>(
             &pool_, address, rpc::Method::kProviderDelete, DeleteRequest{pid})
      .Then([](Result<DeleteResponse> rsp) { return rsp.status(); });
}

}  // namespace blobseer::provider
