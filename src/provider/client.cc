#include "provider/client.h"

#include "provider/messages.h"
#include "rpc/call.h"

namespace blobseer::provider {

ProviderClient::ProviderClient(rpc::Transport* transport,
                               size_t channels_per_endpoint)
    : pool_(transport, channels_per_endpoint) {}

Status ProviderClient::WritePage(const std::string& address, const PageId& pid,
                                 Slice data) {
  auto ch = pool_.Get(address);
  if (!ch.ok()) return ch.status();
  WriteRequest req;
  req.pid = pid;
  req.data = data.ToString();
  WriteResponse rsp;
  return rpc::CallMethod(ch->get(), rpc::Method::kProviderWrite, req, &rsp);
}

Status ProviderClient::ReadPage(const std::string& address, const PageId& pid,
                                uint64_t offset, uint64_t len,
                                std::string* out) {
  auto ch = pool_.Get(address);
  if (!ch.ok()) return ch.status();
  ReadRequest req{pid, offset, len};
  ReadResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kProviderRead, req, &rsp));
  *out = std::move(rsp.data);
  return Status::OK();
}

Status ProviderClient::DeletePage(const std::string& address,
                                  const PageId& pid) {
  auto ch = pool_.Get(address);
  if (!ch.ok()) return ch.status();
  DeleteRequest req{pid};
  DeleteResponse rsp;
  return rpc::CallMethod(ch->get(), rpc::Method::kProviderDelete, req, &rsp);
}

Status ProviderClient::Stats(const std::string& address, uint64_t* pages,
                             uint64_t* bytes) {
  auto ch = pool_.Get(address);
  if (!ch.ok()) return ch.status();
  StatsRequest req;
  StatsResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kProviderStats, req, &rsp));
  *pages = rsp.pages;
  *bytes = rsp.bytes;
  return Status::OK();
}

}  // namespace blobseer::provider
