#include "provider/service.h"

#include <chrono>

#include "provider/messages.h"
#include "rpc/call.h"

namespace blobseer::provider {

ProviderService::ProviderService(std::unique_ptr<PageStore> store)
    : store_(std::move(store)) {}

ProviderService::~ProviderService() { StopPeriodicCompaction(); }

void ProviderService::StartPeriodicCompaction(Executor* executor,
                                              uint64_t interval_us) {
  if (loop_ || interval_us == 0) return;
  loop_ = std::make_shared<CompactionLoop>();
  // The raw store pointer is safe: the destructor stops the loop (and
  // waits for `done`) before `store_` is destroyed.
  executor->Schedule([loop = loop_, store = store_.get(), interval_us] {
    std::unique_lock<std::mutex> lock(loop->mu);
    while (!loop->stop) {
      if (loop->cv.wait_for(lock, std::chrono::microseconds(interval_us),
                            [&] { return loop->stop; })) {
        break;
      }
      lock.unlock();
      // Compact() is safe against concurrent reads/writes by contract;
      // errors are reported by the store's own stats, not fatal here.
      (void)store->Compact();
      loop->passes.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
    loop->done = true;
    loop->cv.notify_all();
  });
}

void ProviderService::StopPeriodicCompaction() {
  if (!loop_) return;
  std::unique_lock<std::mutex> lock(loop_->mu);
  loop_->stop = true;
  loop_->cv.notify_all();
  // The loop record stays (compaction_passes remains readable); only the
  // running task is torn down.
  loop_->cv.wait(lock, [&] { return loop_->done; });
}

uint64_t ProviderService::compaction_passes() const {
  return loop_ ? loop_->passes.load(std::memory_order_relaxed) : 0;
}

Status ProviderService::Handle(rpc::Method method, Slice payload,
                               std::string* response) {
  using rpc::DispatchTyped;
  switch (method) {
    case rpc::Method::kProviderWrite:
      return DispatchTyped<WriteRequest, WriteResponse>(
          payload, response, [this](const WriteRequest& req, WriteResponse*) {
            return store_->Put(req.pid, Slice(req.data));
          });
    case rpc::Method::kProviderRead:
      return DispatchTyped<ReadRequest, ReadResponse>(
          payload, response, [this](const ReadRequest& req, ReadResponse* rsp) {
            return store_->Read(req.pid, req.offset, req.len, &rsp->data);
          });
    case rpc::Method::kProviderDelete:
      return DispatchTyped<DeleteRequest, DeleteResponse>(
          payload, response,
          [this](const DeleteRequest& req, DeleteResponse*) {
            return store_->Delete(req.pid);
          });
    case rpc::Method::kProviderStats:
      return DispatchTyped<StatsRequest, StatsResponse>(
          payload, response, [this](const StatsRequest&, StatsResponse* rsp) {
            PageStoreStats st = store_->GetStats();
            rsp->pages = st.pages;
            rsp->bytes = st.bytes;
            rsp->writes = st.writes;
            rsp->reads = st.reads;
            rsp->deletes = st.deletes;
            rsp->segments = st.segments;
            rsp->dead_bytes = st.dead_bytes;
            rsp->syncs = st.syncs;
            rsp->compactions = st.compactions;
            return Status::OK();
          });
    default:
      return Status::NotSupported("provider method");
  }
}

}  // namespace blobseer::provider
