#include "provider/service.h"

#include <chrono>
#include <utility>

#include "pmanager/client.h"
#include "provider/messages.h"
#include "rpc/call.h"

namespace blobseer::provider {

// Shared state of the heartbeat sender loop. The loop task owns this via
// shared_ptr, so Stop/destruction never races a beat in flight; `done` is
// an executor-provided event (real condvar or sim condition), making the
// stop handshake correct on OS threads and under virtual time alike.
struct ProviderService::HeartbeatLoop {
  std::atomic<bool> stop{false};
  std::shared_ptr<WaitEvent> done;
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> failures{0};
  HeartbeatConfig config;
  std::unique_ptr<pmanager::ProviderManagerClient> pm;
};

ProviderService::ProviderService(std::unique_ptr<PageStore> store)
    : store_(std::move(store)) {}

ProviderService::~ProviderService() {
  StopHeartbeat();
  StopPeriodicCompaction();
}

void ProviderService::StartHeartbeat(Executor* executor, Clock* clock,
                                     HeartbeatConfig config) {
  if (config.interval_us == 0 || config.transport == nullptr) return;
  StopHeartbeat();  // restart harnesses re-arm the sender
  auto loop = std::make_shared<HeartbeatLoop>();
  loop->done = executor->MakeWaitEvent();
  loop->config = std::move(config);
  loop->pm = std::make_unique<pmanager::ProviderManagerClient>(
      loop->config.transport, loop->config.pmanager_address,
      /*channels=*/1);
  hb_ = loop;
  // The raw store pointer is safe: the destructor stops the loop (and
  // waits on `done`) before `store_` is destroyed.
  executor->Schedule([loop, clock, store = store_.get()] {
    uint64_t sleep_us = loop->config.initial_delay_us
                            ? loop->config.initial_delay_us
                            : loop->config.interval_us;
    while (!loop->stop.load(std::memory_order_acquire)) {
      clock->SleepForMicros(sleep_us);
      sleep_us = loop->config.interval_us;
      if (loop->stop.load(std::memory_order_acquire)) break;
      PageStoreStats st = store->GetStats();
      Status s = loop->pm->Heartbeat(loop->config.id, st.pages, st.bytes);
      if (s.IsNotFound()) {
        // The provider manager does not know us (it restarted with an
        // empty registry): re-register under the same address, which
        // also refreshes liveness.
        auto id = loop->pm->Register(loop->config.self_address,
                                     loop->config.capacity_pages);
        if (id.ok()) {
          loop->config.id = *id;
          s = Status::OK();
        }
      }
      if (s.ok()) {
        loop->sent.fetch_add(1, std::memory_order_relaxed);
      } else {
        loop->failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
    loop->done->Signal();
  });
}

void ProviderService::RequestStopHeartbeat() {
  if (!hb_) return;
  hb_->stop.store(true, std::memory_order_release);
}

void ProviderService::StopHeartbeat() {
  if (!hb_) return;
  hb_->stop.store(true, std::memory_order_release);
  // At most one beat interval away: the loop re-checks stop right after
  // its clock sleep. Await is signal-before-await safe, so a second Stop
  // (destructor after an explicit Stop) returns immediately. The loop
  // record stays so the beat counters remain readable after Stop.
  hb_->done->Await();
}

uint64_t ProviderService::heartbeats_sent() const {
  return hb_ ? hb_->sent.load(std::memory_order_relaxed) : 0;
}

uint64_t ProviderService::heartbeat_failures() const {
  return hb_ ? hb_->failures.load(std::memory_order_relaxed) : 0;
}

void ProviderService::StartPeriodicCompaction(Executor* executor,
                                              uint64_t interval_us) {
  if (loop_ || interval_us == 0) return;
  loop_ = std::make_shared<CompactionLoop>();
  // The raw store pointer is safe: the destructor stops the loop (and
  // waits for `done`) before `store_` is destroyed.
  executor->Schedule([loop = loop_, store = store_.get(), interval_us] {
    std::unique_lock<std::mutex> lock(loop->mu);
    while (!loop->stop) {
      if (loop->cv.wait_for(lock, std::chrono::microseconds(interval_us),
                            [&] { return loop->stop; })) {
        break;
      }
      lock.unlock();
      // Compact() is safe against concurrent reads/writes by contract;
      // errors are reported by the store's own stats, not fatal here.
      (void)store->Compact();
      loop->passes.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
    loop->done = true;
    loop->cv.notify_all();
  });
}

void ProviderService::StopPeriodicCompaction() {
  if (!loop_) return;
  std::unique_lock<std::mutex> lock(loop_->mu);
  loop_->stop = true;
  loop_->cv.notify_all();
  // The loop record stays (compaction_passes remains readable); only the
  // running task is torn down.
  loop_->cv.wait(lock, [&] { return loop_->done; });
}

uint64_t ProviderService::compaction_passes() const {
  return loop_ ? loop_->passes.load(std::memory_order_relaxed) : 0;
}

Status ProviderService::Handle(rpc::Method method, Slice payload,
                               std::string* response) {
  using rpc::DispatchTyped;
  switch (method) {
    case rpc::Method::kProviderWrite:
      return DispatchTyped<WriteRequest, WriteResponse>(
          payload, response, [this](const WriteRequest& req, WriteResponse*) {
            return store_->Put(req.pid, Slice(req.data));
          });
    case rpc::Method::kProviderRead:
      return DispatchTyped<ReadRequest, ReadResponse>(
          payload, response, [this](const ReadRequest& req, ReadResponse* rsp) {
            return store_->Read(req.pid, req.offset, req.len, &rsp->data);
          });
    case rpc::Method::kProviderDelete:
      return DispatchTyped<DeleteRequest, DeleteResponse>(
          payload, response,
          [this](const DeleteRequest& req, DeleteResponse*) {
            return store_->Delete(req.pid);
          });
    case rpc::Method::kProviderStats:
      return DispatchTyped<StatsRequest, StatsResponse>(
          payload, response, [this](const StatsRequest&, StatsResponse* rsp) {
            PageStoreStats st = store_->GetStats();
            rsp->pages = st.pages;
            rsp->bytes = st.bytes;
            rsp->writes = st.writes;
            rsp->reads = st.reads;
            rsp->deletes = st.deletes;
            rsp->segments = st.segments;
            rsp->dead_bytes = st.dead_bytes;
            rsp->syncs = st.syncs;
            rsp->compactions = st.compactions;
            rsp->io_submissions = st.io_submissions;
            rsp->io_sqes = st.io_sqes;
            rsp->bytes_written = st.bytes_written;
            rsp->read_syscalls = st.read_syscalls;
            rsp->recovery_us = st.recovery_us;
            return Status::OK();
          });
    default:
      return Status::NotSupported("provider method");
  }
}

}  // namespace blobseer::provider
