#include "provider/service.h"

#include "provider/messages.h"
#include "rpc/call.h"

namespace blobseer::provider {

ProviderService::ProviderService(std::unique_ptr<PageStore> store)
    : store_(std::move(store)) {}

Status ProviderService::Handle(rpc::Method method, Slice payload,
                               std::string* response) {
  using rpc::DispatchTyped;
  switch (method) {
    case rpc::Method::kProviderWrite:
      return DispatchTyped<WriteRequest, WriteResponse>(
          payload, response, [this](const WriteRequest& req, WriteResponse*) {
            return store_->Put(req.pid, Slice(req.data));
          });
    case rpc::Method::kProviderRead:
      return DispatchTyped<ReadRequest, ReadResponse>(
          payload, response, [this](const ReadRequest& req, ReadResponse* rsp) {
            return store_->Read(req.pid, req.offset, req.len, &rsp->data);
          });
    case rpc::Method::kProviderDelete:
      return DispatchTyped<DeleteRequest, DeleteResponse>(
          payload, response,
          [this](const DeleteRequest& req, DeleteResponse*) {
            return store_->Delete(req.pid);
          });
    case rpc::Method::kProviderStats:
      return DispatchTyped<StatsRequest, StatsResponse>(
          payload, response, [this](const StatsRequest&, StatsResponse* rsp) {
            PageStoreStats st = store_->GetStats();
            rsp->pages = st.pages;
            rsp->bytes = st.bytes;
            rsp->writes = st.writes;
            rsp->reads = st.reads;
            rsp->deletes = st.deletes;
            rsp->segments = st.segments;
            rsp->dead_bytes = st.dead_bytes;
            rsp->syncs = st.syncs;
            rsp->compactions = st.compactions;
            return Status::OK();
          });
    default:
      return Status::NotSupported("provider method");
  }
}

}  // namespace blobseer::provider
