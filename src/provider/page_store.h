// Storage engines for page objects held by a data provider.
#ifndef BLOBSEER_PROVIDER_PAGE_STORE_H_
#define BLOBSEER_PROVIDER_PAGE_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace blobseer::provider {

struct PageStoreStats {
  uint64_t pages = 0;
  uint64_t bytes = 0;
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t deletes = 0;
  // Log-structured backend extension (zero for the other engines).
  uint64_t segments = 0;     ///< on-disk segment files currently open
  uint64_t dead_bytes = 0;   ///< payload bytes of deleted/duplicate records
  uint64_t syncs = 0;        ///< fdatasync/fsync calls issued (group commit)
  uint64_t compactions = 0;  ///< segments reclaimed by Compact()
  // Raw-I/O backend counters (pagelog IoBackend seam; zero elsewhere).
  uint64_t io_submissions = 0;  ///< batched submission syscalls (io_uring_enter
                                ///< for uring; every pwrite/fsync for psync)
  uint64_t io_sqes = 0;         ///< individual I/O ops submitted (SQEs)
  uint64_t bytes_written = 0;   ///< file bytes written via the append path
  uint64_t read_syscalls = 0;   ///< pread syscalls issued by the read path
  uint64_t recovery_us = 0;     ///< open-time segment scan/replay micros
};

/// Abstract page object store. Page objects are immutable once written
/// (BlobSeer updates always mint new page ids), so implementations never
/// need update-in-place.
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Stores a page object. Overwriting an existing id with identical length
  /// is idempotent; differing content is a protocol violation reported as
  /// AlreadyExists.
  virtual Status Put(const PageId& id, Slice data) = 0;

  /// Reads `len` bytes starting at `offset` within the object; `len == 0`
  /// means "through the end". Fails with OutOfRange if the object is
  /// shorter than requested.
  virtual Status Read(const PageId& id, uint64_t offset, uint64_t len,
                      std::string* out) = 0;

  virtual Status Delete(const PageId& id) = 0;

  /// Reclaims space held by deleted pages. No-op for engines that free space
  /// eagerly; the log-structured backend rewrites segments whose dead ratio
  /// exceeds its configured threshold. Safe to call concurrently with reads
  /// and writes.
  virtual Status Compact() { return Status::OK(); }

  virtual PageStoreStats GetStats() const = 0;
};

/// Validates a read of [offset, offset+len) against an object of
/// `object_size` bytes; `len == 0` means "through the end" and is rewritten
/// to the remaining byte count. Shared by every PageStore engine.
inline Status CheckReadRange(uint64_t object_size, uint64_t offset,
                             uint64_t* len) {
  if (offset > object_size) return Status::OutOfRange("page read offset");
  uint64_t avail = object_size - offset;
  if (*len == 0) {
    *len = avail;
    return Status::OK();
  }
  if (*len > avail)
    return Status::OutOfRange("page read [" + std::to_string(offset) + ",+" +
                              std::to_string(*len) + ") beyond object of " +
                              std::to_string(object_size) + " bytes");
  return Status::OK();
}

/// Heap-backed store (the configuration used for all paper experiments —
/// Grid'5000 providers served pages from RAM).
std::unique_ptr<PageStore> MakeMemoryPageStore();

/// Durable store: one file per page object under `dir`, fanned into 256
/// subdirectories by page-id hash.
std::unique_ptr<PageStore> MakeFilePageStore(const std::string& dir);

/// Size-only store for the network simulator: remembers object lengths and
/// serves zero bytes. Keeps 175-node / multi-GiB simulations in memory.
std::unique_ptr<PageStore> MakeNullPageStore();

}  // namespace blobseer::provider

#endif  // BLOBSEER_PROVIDER_PAGE_STORE_H_
