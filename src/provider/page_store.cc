#include "provider/page_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace blobseer::provider {

namespace {

class MemoryPageStore : public PageStore {
 public:
  Status Put(const PageId& id, Slice data) override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.writes++;
    auto it = pages_.find(id);
    if (it != pages_.end()) {
      if (it->second.size() == data.size()) return Status::OK();
      return Status::AlreadyExists("page object rewritten with new content: " +
                                   id.ToString());
    }
    pages_.emplace(id, data.ToString());
    stats_.pages++;
    stats_.bytes += data.size();
    return Status::OK();
  }

  Status Read(const PageId& id, uint64_t offset, uint64_t len,
              std::string* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.reads++;
    auto it = pages_.find(id);
    if (it == pages_.end()) return Status::NotFound("page " + id.ToString());
    BS_RETURN_NOT_OK(CheckReadRange(it->second.size(), offset, &len));
    out->assign(it->second.data() + offset, len);
    return Status::OK();
  }

  Status Delete(const PageId& id) override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deletes++;
    auto it = pages_.find(id);
    if (it != pages_.end()) {
      stats_.bytes -= it->second.size();
      stats_.pages--;
      pages_.erase(it);
    }
    return Status::OK();
  }

  PageStoreStats GetStats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<PageId, std::string> pages_;
  PageStoreStats stats_;
};

class NullPageStore : public PageStore {
 public:
  Status Put(const PageId& id, Slice data) override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.writes++;
    auto [it, inserted] = sizes_.emplace(id, data.size());
    if (!inserted && it->second != data.size())
      return Status::AlreadyExists("page object rewritten");
    if (inserted) {
      stats_.pages++;
      stats_.bytes += data.size();
    }
    return Status::OK();
  }

  Status Read(const PageId& id, uint64_t offset, uint64_t len,
              std::string* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.reads++;
    auto it = sizes_.find(id);
    if (it == sizes_.end()) return Status::NotFound("page " + id.ToString());
    BS_RETURN_NOT_OK(CheckReadRange(it->second, offset, &len));
    out->assign(len, '\0');
    return Status::OK();
  }

  Status Delete(const PageId& id) override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deletes++;
    auto it = sizes_.find(id);
    if (it != sizes_.end()) {
      stats_.bytes -= it->second;
      stats_.pages--;
      sizes_.erase(it);
    }
    return Status::OK();
  }

  PageStoreStats GetStats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<PageId, uint64_t> sizes_;
  PageStoreStats stats_;
};

class FilePageStore : public PageStore {
 public:
  explicit FilePageStore(std::string dir) : dir_(std::move(dir)) {
    // Create the full path (the provider directory may be nested, e.g.
    // <cluster-dir>/provider-3), then the 256 fan-out buckets.
    std::string partial;
    for (const char c : dir_ + "/") {
      if (c == '/' && !partial.empty()) ::mkdir(partial.c_str(), 0755);
      partial.push_back(c);
    }
    for (int i = 0; i < 256; i++) {
      std::string bucket = StrFormat("%s/%02x", dir_.c_str(), i);
      if (::mkdir(bucket.c_str(), 0755) != 0 && errno == EEXIST) {
        RecoverBucket(bucket);
      }
    }
  }

  /// Reopening an existing directory: seed pages/bytes from the page files
  /// already on disk so stats reflect reality, and sweep stale temp files
  /// left by a crash mid-Put.
  void RecoverBucket(const std::string& bucket) {
    DIR* d = ::opendir(bucket.c_str());
    if (!d) return;
    while (struct dirent* ent = ::readdir(d)) {
      std::string name = ent->d_name;
      std::string path = bucket + "/" + name;
      if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
        ::remove(path.c_str());
        continue;
      }
      if (name.size() < 5 || name.compare(name.size() - 5, 5, ".page") != 0)
        continue;
      struct stat st;
      if (::stat(path.c_str(), &st) != 0) continue;
      stats_.pages++;
      stats_.bytes += static_cast<uint64_t>(st.st_size);
    }
    ::closedir(d);
  }

  Status Put(const PageId& id, Slice data) override {
    std::string path = PathFor(id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.writes++;
    }
    // Immutability: if the file exists with the same size, treat as
    // idempotent replay — but the prior attempt's directory fsync may have
    // failed after the rename, so re-issue it before acking durability.
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) {
      if (static_cast<uint64_t>(st.st_size) != data.size())
        return Status::AlreadyExists("page file exists: " + path);
      Status dir_sync = SyncDirOf(path);
      std::lock_guard<std::mutex> lock(mu_);
      stats_.syncs++;
      return dir_sync;
    }
    // Durable publish: write + fsync the temp file, rename it into place,
    // then fsync the bucket directory so the new directory entry survives
    // power loss too (temp+rename alone only orders the data, it does not
    // persist the name).
    std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return Status::IOError("open " + tmp + ": " + strerror(errno));
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        ::remove(tmp.c_str());
        return Status::IOError("write " + tmp + ": " + strerror(errno));
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      ::remove(tmp.c_str());
      return Status::IOError("fsync " + tmp + ": " + strerror(errno));
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      ::remove(tmp.c_str());
      return Status::IOError("rename " + path);
    }
    Status dir_sync = SyncDirOf(path);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.syncs += 2;  // data file + bucket directory
    stats_.pages++;
    stats_.bytes += data.size();
    return dir_sync;
  }

  Status Read(const PageId& id, uint64_t offset, uint64_t len,
              std::string* out) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.reads++;
    }
    std::string path = PathFor(id);
    FILE* f = ::fopen(path.c_str(), "rb");
    if (!f) return Status::NotFound("page " + id.ToString());
    ::fseek(f, 0, SEEK_END);
    uint64_t size = static_cast<uint64_t>(::ftell(f));
    Status s = CheckReadRange(size, offset, &len);
    if (!s.ok()) {
      ::fclose(f);
      return s;
    }
    ::fseek(f, static_cast<long>(offset), SEEK_SET);
    out->resize(len);
    size_t n = len == 0 ? 0 : ::fread(out->data(), 1, len, f);
    ::fclose(f);
    if (n != len) return Status::IOError("short read: " + path);
    return Status::OK();
  }

  Status Delete(const PageId& id) override {
    std::string path = PathFor(id);
    struct stat st;
    uint64_t size = ::stat(path.c_str(), &st) == 0
                        ? static_cast<uint64_t>(st.st_size)
                        : 0;
    bool existed = ::remove(path.c_str()) == 0;
    // The unlink must survive power loss too, or version-GC'd pages
    // resurrect on reopen. Synced even when the file is already gone: a
    // retried Delete must cover a prior attempt whose unlink landed but
    // whose directory flush failed.
    Status dir_sync = SyncDirOf(path);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deletes++;
    stats_.syncs++;
    if (existed) {
      stats_.pages--;
      stats_.bytes -= size;
    }
    return dir_sync;
  }

  PageStoreStats GetStats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  static Status SyncDirOf(const std::string& path) {
    std::string dir = path.substr(0, path.rfind('/'));
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
      return Status::IOError("open dir " + dir + ": " + strerror(errno));
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0)
      return Status::IOError("fsync dir " + dir + ": " + strerror(errno));
    return Status::OK();
  }

  std::string PathFor(const PageId& id) const {
    return StrFormat("%s/%02x/%016llx%016llx.page", dir_.c_str(),
                     static_cast<int>(id.lo & 0xff),
                     static_cast<unsigned long long>(id.hi),
                     static_cast<unsigned long long>(id.lo));
  }

  std::string dir_;
  mutable std::mutex mu_;
  PageStoreStats stats_;
};

}  // namespace

std::unique_ptr<PageStore> MakeMemoryPageStore() {
  return std::make_unique<MemoryPageStore>();
}
std::unique_ptr<PageStore> MakeFilePageStore(const std::string& dir) {
  return std::make_unique<FilePageStore>(dir);
}
std::unique_ptr<PageStore> MakeNullPageStore() {
  return std::make_unique<NullPageStore>();
}

}  // namespace blobseer::provider
