#include "provider/page_store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace blobseer::provider {

namespace {

Status CheckRange(uint64_t object_size, uint64_t offset, uint64_t* len) {
  if (*len == 0) {
    if (offset > object_size) return Status::OutOfRange("page read offset");
    *len = object_size - offset;
    return Status::OK();
  }
  if (offset + *len > object_size)
    return Status::OutOfRange(StrFormat(
        "page read [%llu,+%llu) beyond object of %llu bytes",
        static_cast<unsigned long long>(offset),
        static_cast<unsigned long long>(*len),
        static_cast<unsigned long long>(object_size)));
  return Status::OK();
}

class MemoryPageStore : public PageStore {
 public:
  Status Put(const PageId& id, Slice data) override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.writes++;
    auto it = pages_.find(id);
    if (it != pages_.end()) {
      if (it->second.size() == data.size()) return Status::OK();
      return Status::AlreadyExists("page object rewritten with new content: " +
                                   id.ToString());
    }
    pages_.emplace(id, data.ToString());
    stats_.pages++;
    stats_.bytes += data.size();
    return Status::OK();
  }

  Status Read(const PageId& id, uint64_t offset, uint64_t len,
              std::string* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.reads++;
    auto it = pages_.find(id);
    if (it == pages_.end()) return Status::NotFound("page " + id.ToString());
    BS_RETURN_NOT_OK(CheckRange(it->second.size(), offset, &len));
    out->assign(it->second.data() + offset, len);
    return Status::OK();
  }

  Status Delete(const PageId& id) override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deletes++;
    auto it = pages_.find(id);
    if (it != pages_.end()) {
      stats_.bytes -= it->second.size();
      stats_.pages--;
      pages_.erase(it);
    }
    return Status::OK();
  }

  PageStoreStats GetStats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<PageId, std::string> pages_;
  PageStoreStats stats_;
};

class NullPageStore : public PageStore {
 public:
  Status Put(const PageId& id, Slice data) override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.writes++;
    auto [it, inserted] = sizes_.emplace(id, data.size());
    if (!inserted && it->second != data.size())
      return Status::AlreadyExists("page object rewritten");
    if (inserted) {
      stats_.pages++;
      stats_.bytes += data.size();
    }
    return Status::OK();
  }

  Status Read(const PageId& id, uint64_t offset, uint64_t len,
              std::string* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.reads++;
    auto it = sizes_.find(id);
    if (it == sizes_.end()) return Status::NotFound("page " + id.ToString());
    BS_RETURN_NOT_OK(CheckRange(it->second, offset, &len));
    out->assign(len, '\0');
    return Status::OK();
  }

  Status Delete(const PageId& id) override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deletes++;
    auto it = sizes_.find(id);
    if (it != sizes_.end()) {
      stats_.bytes -= it->second;
      stats_.pages--;
      sizes_.erase(it);
    }
    return Status::OK();
  }

  PageStoreStats GetStats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<PageId, uint64_t> sizes_;
  PageStoreStats stats_;
};

class FilePageStore : public PageStore {
 public:
  explicit FilePageStore(std::string dir) : dir_(std::move(dir)) {
    // Create the full path (the provider directory may be nested, e.g.
    // <cluster-dir>/provider-3), then the 256 fan-out buckets.
    std::string partial;
    for (const char c : dir_ + "/") {
      if (c == '/' && !partial.empty()) ::mkdir(partial.c_str(), 0755);
      partial.push_back(c);
    }
    for (int i = 0; i < 256; i++) {
      ::mkdir(StrFormat("%s/%02x", dir_.c_str(), i).c_str(), 0755);
    }
  }

  Status Put(const PageId& id, Slice data) override {
    std::string path = PathFor(id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.writes++;
    }
    // Immutability: if the file exists with the same size, treat as
    // idempotent replay.
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) {
      if (static_cast<uint64_t>(st.st_size) == data.size())
        return Status::OK();
      return Status::AlreadyExists("page file exists: " + path);
    }
    std::string tmp = path + ".tmp";
    FILE* f = ::fopen(tmp.c_str(), "wb");
    if (!f) return Status::IOError("open " + tmp + ": " + strerror(errno));
    size_t n = data.empty() ? 0 : ::fwrite(data.data(), 1, data.size(), f);
    if (::fclose(f) != 0 || n != data.size()) {
      ::remove(tmp.c_str());
      return Status::IOError("write " + tmp);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      ::remove(tmp.c_str());
      return Status::IOError("rename " + path);
    }
    std::lock_guard<std::mutex> lock(mu_);
    stats_.pages++;
    stats_.bytes += data.size();
    return Status::OK();
  }

  Status Read(const PageId& id, uint64_t offset, uint64_t len,
              std::string* out) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.reads++;
    }
    std::string path = PathFor(id);
    FILE* f = ::fopen(path.c_str(), "rb");
    if (!f) return Status::NotFound("page " + id.ToString());
    ::fseek(f, 0, SEEK_END);
    uint64_t size = static_cast<uint64_t>(::ftell(f));
    Status s = CheckRange(size, offset, &len);
    if (!s.ok()) {
      ::fclose(f);
      return s;
    }
    ::fseek(f, static_cast<long>(offset), SEEK_SET);
    out->resize(len);
    size_t n = len == 0 ? 0 : ::fread(out->data(), 1, len, f);
    ::fclose(f);
    if (n != len) return Status::IOError("short read: " + path);
    return Status::OK();
  }

  Status Delete(const PageId& id) override {
    std::string path = PathFor(id);
    struct stat st;
    uint64_t size = ::stat(path.c_str(), &st) == 0
                        ? static_cast<uint64_t>(st.st_size)
                        : 0;
    bool existed = ::remove(path.c_str()) == 0;
    std::lock_guard<std::mutex> lock(mu_);
    stats_.deletes++;
    if (existed) {
      stats_.pages--;
      stats_.bytes -= size;
    }
    return Status::OK();
  }

  PageStoreStats GetStats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  std::string PathFor(const PageId& id) const {
    return StrFormat("%s/%02x/%016llx%016llx.page", dir_.c_str(),
                     static_cast<int>(id.lo & 0xff),
                     static_cast<unsigned long long>(id.hi),
                     static_cast<unsigned long long>(id.lo));
  }

  std::string dir_;
  mutable std::mutex mu_;
  PageStoreStats stats_;
};

}  // namespace

std::unique_ptr<PageStore> MakeMemoryPageStore() {
  return std::make_unique<MemoryPageStore>();
}
std::unique_ptr<PageStore> MakeFilePageStore(const std::string& dir) {
  return std::make_unique<FilePageStore>(dir);
}
std::unique_ptr<PageStore> MakeNullPageStore() {
  return std::make_unique<NullPageStore>();
}

}  // namespace blobseer::provider
