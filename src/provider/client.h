// Typed client for data provider endpoints.
#ifndef BLOBSEER_PROVIDER_CLIENT_H_
#define BLOBSEER_PROVIDER_CLIENT_H_

#include <string>

#include "common/types.h"
#include "rpc/channel_pool.h"
#include "rpc/transport.h"

namespace blobseer::provider {

/// Stateless helper issuing page operations against arbitrary provider
/// addresses through a shared channel pool (thread-safe).
class ProviderClient {
 public:
  ProviderClient(rpc::Transport* transport, size_t channels_per_endpoint = 4);

  Status WritePage(const std::string& address, const PageId& pid, Slice data);
  Status ReadPage(const std::string& address, const PageId& pid,
                  uint64_t offset, uint64_t len, std::string* out);
  Status DeletePage(const std::string& address, const PageId& pid);
  Status Stats(const std::string& address, uint64_t* pages, uint64_t* bytes);

 private:
  rpc::ChannelPool pool_;
};

}  // namespace blobseer::provider

#endif  // BLOBSEER_PROVIDER_CLIENT_H_
