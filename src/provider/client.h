// Typed client for data provider endpoints.
#ifndef BLOBSEER_PROVIDER_CLIENT_H_
#define BLOBSEER_PROVIDER_CLIENT_H_

#include <string>

#include "common/future.h"
#include "common/result.h"
#include "common/types.h"
#include "provider/page_store.h"
#include "rpc/channel_pool.h"
#include "rpc/transport.h"

namespace blobseer::provider {

/// Stateless helper issuing page operations against arbitrary provider
/// addresses through a shared channel pool (thread-safe).
class ProviderClient {
 public:
  ProviderClient(rpc::Transport* transport, size_t channels_per_endpoint = 4);

  Status WritePage(const std::string& address, const PageId& pid, Slice data);
  Status ReadPage(const std::string& address, const PageId& pid,
                  uint64_t offset, uint64_t len, std::string* out);
  Status DeletePage(const std::string& address, const PageId& pid);
  Status Stats(const std::string& address, uint64_t* pages, uint64_t* bytes);
  /// Full store statistics, including the log-backend extension fields.
  Result<PageStoreStats> FetchStats(const std::string& address);

  /// Async variants used by the client pipeline's page fan-out.
  Future<Unit> WritePageAsync(const std::string& address, const PageId& pid,
                              Slice data);
  Future<std::string> ReadPageAsync(const std::string& address,
                                    const PageId& pid, uint64_t offset,
                                    uint64_t len);
  Future<Unit> DeletePageAsync(const std::string& address, const PageId& pid);

 private:
  rpc::ChannelPool pool_;
};

}  // namespace blobseer::provider

#endif  // BLOBSEER_PROVIDER_CLIENT_H_
