// Wire messages for the data provider service.
#ifndef BLOBSEER_PROVIDER_MESSAGES_H_
#define BLOBSEER_PROVIDER_MESSAGES_H_

#include <string>

#include "common/serde.h"

namespace blobseer::provider {

struct WriteRequest {
  PageId pid;
  std::string data;
  void EncodeTo(BinaryWriter* w) const {
    w->PutPageId(pid);
    w->PutString(data);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetPageId(&pid));
    return r->GetString(&data);
  }
};

struct WriteResponse {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

struct ReadRequest {
  PageId pid;
  uint64_t offset = 0;
  uint64_t len = 0;  // 0 = through end of object
  void EncodeTo(BinaryWriter* w) const {
    w->PutPageId(pid);
    w->PutU64(offset);
    w->PutU64(len);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetPageId(&pid));
    BS_RETURN_NOT_OK(r->GetU64(&offset));
    return r->GetU64(&len);
  }
};

struct ReadResponse {
  std::string data;
  void EncodeTo(BinaryWriter* w) const { w->PutString(data); }
  Status DecodeFrom(BinaryReader* r) { return r->GetString(&data); }
};

struct DeleteRequest {
  PageId pid;
  void EncodeTo(BinaryWriter* w) const { w->PutPageId(pid); }
  Status DecodeFrom(BinaryReader* r) { return r->GetPageId(&pid); }
};

struct DeleteResponse {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

struct StatsRequest {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

/// Mirrors PageStoreStats field-for-field, including the log-structured
/// backend extension (segments/dead_bytes/syncs/compactions and the raw-I/O
/// counters are zero for the other engines).
struct StatsResponse {
  uint64_t pages = 0;
  uint64_t bytes = 0;
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t deletes = 0;
  uint64_t segments = 0;
  uint64_t dead_bytes = 0;
  uint64_t syncs = 0;
  uint64_t compactions = 0;
  uint64_t io_submissions = 0;
  uint64_t io_sqes = 0;
  uint64_t bytes_written = 0;
  uint64_t read_syscalls = 0;
  uint64_t recovery_us = 0;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(pages);
    w->PutU64(bytes);
    w->PutU64(writes);
    w->PutU64(reads);
    w->PutU64(deletes);
    w->PutU64(segments);
    w->PutU64(dead_bytes);
    w->PutU64(syncs);
    w->PutU64(compactions);
    w->PutU64(io_submissions);
    w->PutU64(io_sqes);
    w->PutU64(bytes_written);
    w->PutU64(read_syscalls);
    w->PutU64(recovery_us);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&pages));
    BS_RETURN_NOT_OK(r->GetU64(&bytes));
    BS_RETURN_NOT_OK(r->GetU64(&writes));
    BS_RETURN_NOT_OK(r->GetU64(&reads));
    BS_RETURN_NOT_OK(r->GetU64(&deletes));
    BS_RETURN_NOT_OK(r->GetU64(&segments));
    BS_RETURN_NOT_OK(r->GetU64(&dead_bytes));
    BS_RETURN_NOT_OK(r->GetU64(&syncs));
    BS_RETURN_NOT_OK(r->GetU64(&compactions));
    BS_RETURN_NOT_OK(r->GetU64(&io_submissions));
    BS_RETURN_NOT_OK(r->GetU64(&io_sqes));
    BS_RETURN_NOT_OK(r->GetU64(&bytes_written));
    BS_RETURN_NOT_OK(r->GetU64(&read_syscalls));
    return r->GetU64(&recovery_us);
  }
};

}  // namespace blobseer::provider

#endif  // BLOBSEER_PROVIDER_MESSAGES_H_
