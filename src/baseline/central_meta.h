// Ablation baseline: centralized metadata management, as in the systems the
// paper contrasts itself with (Lustre/PVFS/GFS-style single metadata
// server; paper section 1 "in all these systems the metadata management is
// centralized"). One server owns the complete page map of every version;
// each update copies the previous version's page table under a global lock.
#ifndef BLOBSEER_BASELINE_CENTRAL_META_H_
#define BLOBSEER_BASELINE_CENTRAL_META_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "common/types.h"
#include "rpc/channel_pool.h"
#include "rpc/transport.h"

namespace blobseer::baseline {

/// One page slot of a version's page table.
struct PageRef {
  PageId pid;
  ProviderId provider = kInvalidProvider;

  void EncodeTo(BinaryWriter* w) const {
    w->PutPageId(pid);
    w->PutU32(provider);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetPageId(&pid));
    return r->GetU32(&provider);
  }
};

struct CentralUpdateResult {
  Version version = 0;
  uint64_t new_size = 0;
};

struct CentralMetaStats {
  uint64_t blobs = 0;
  uint64_t versions = 0;
  uint64_t page_refs = 0;  ///< total page-table entries held (space metric)
};

/// The centralized metadata server. Aligned updates only (page-granular):
/// the comparison targets metadata scalability, not unaligned handling.
class CentralMetaService : public rpc::ServiceHandler {
 public:
  Status Handle(rpc::Method method, Slice payload,
                std::string* response) override;

  CentralMetaStats GetStats() const;

  /// Invoked after every update with the number of page refs the version
  /// copy touched, outside the internal lock. Benchmarks on the simulated
  /// transport use it to charge the copy's CPU cost in virtual time.
  void set_update_cost_hook(std::function<void(uint64_t refs_copied)> hook) {
    cost_hook_ = std::move(hook);
  }

 private:
  std::function<void(uint64_t)> cost_hook_;
  struct BlobState {
    uint64_t psize = 0;
    /// Page table per published version; index = version. Version 0 is the
    /// empty table. Each update deep-copies the predecessor (the classic
    /// snapshot cost the segment tree avoids).
    std::vector<std::shared_ptr<const std::vector<PageRef>>> versions;
    std::vector<uint64_t> sizes;
  };
  mutable std::mutex mu_;  // single global lock: the centralized bottleneck
  std::map<BlobId, BlobState> blobs_;
  BlobId next_id_ = 1;
  uint64_t total_page_refs_ = 0;
  uint64_t total_versions_ = 0;
};

/// Client for the baseline service.
class CentralMetaClient {
 public:
  CentralMetaClient(rpc::Transport* transport, std::string address,
                    size_t channels = 8);

  Result<BlobId> Create(uint64_t psize);
  /// Registers an aligned update covering pages [first_page,
  /// first_page+refs.size()): returns the new version.
  Result<CentralUpdateResult> Update(BlobId id, uint64_t first_page,
                                     const std::vector<PageRef>& refs,
                                     uint64_t new_size);
  /// Page refs covering the aligned range of a version.
  Result<std::vector<PageRef>> GetLayout(BlobId id, Version version,
                                         uint64_t first_page,
                                         uint64_t num_pages);
  Status GetRecent(BlobId id, Version* version, uint64_t* size);

 private:
  std::string address_;
  rpc::ChannelPool pool_;
};

}  // namespace blobseer::baseline

#endif  // BLOBSEER_BASELINE_CENTRAL_META_H_
