#include "baseline/central_meta.h"

#include "common/math_util.h"
#include "rpc/call.h"

namespace blobseer::baseline {

namespace {

struct CreateRequest {
  uint64_t psize = 0;
  void EncodeTo(BinaryWriter* w) const { w->PutU64(psize); }
  Status DecodeFrom(BinaryReader* r) { return r->GetU64(&psize); }
};
struct CreateResponse {
  BlobId id = kInvalidBlobId;
  void EncodeTo(BinaryWriter* w) const { w->PutU64(id); }
  Status DecodeFrom(BinaryReader* r) { return r->GetU64(&id); }
};

struct UpdateRequest {
  BlobId id = kInvalidBlobId;
  uint64_t first_page = 0;
  uint64_t new_size = 0;
  std::vector<PageRef> refs;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(id);
    w->PutU64(first_page);
    w->PutU64(new_size);
    PutVector(w, refs);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&id));
    BS_RETURN_NOT_OK(r->GetU64(&first_page));
    BS_RETURN_NOT_OK(r->GetU64(&new_size));
    return GetVector(r, &refs);
  }
};
struct UpdateResponse {
  uint64_t version = 0;
  uint64_t new_size = 0;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(version);
    w->PutU64(new_size);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&version));
    return r->GetU64(&new_size);
  }
};

struct LayoutRequest {
  BlobId id = kInvalidBlobId;
  Version version = 0;
  uint64_t first_page = 0;
  uint64_t num_pages = 0;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(id);
    w->PutU64(version);
    w->PutU64(first_page);
    w->PutU64(num_pages);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&id));
    BS_RETURN_NOT_OK(r->GetU64(&version));
    BS_RETURN_NOT_OK(r->GetU64(&first_page));
    return r->GetU64(&num_pages);
  }
};
struct LayoutResponse {
  std::vector<PageRef> refs;
  void EncodeTo(BinaryWriter* w) const { PutVector(w, refs); }
  Status DecodeFrom(BinaryReader* r) { return GetVector(r, &refs); }
};

struct RecentRequest {
  BlobId id = kInvalidBlobId;
  void EncodeTo(BinaryWriter* w) const { w->PutU64(id); }
  Status DecodeFrom(BinaryReader* r) { return r->GetU64(&id); }
};
struct RecentResponse {
  uint64_t version = 0;
  uint64_t size = 0;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(version);
    w->PutU64(size);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&version));
    return r->GetU64(&size);
  }
};

}  // namespace

Status CentralMetaService::Handle(rpc::Method method, Slice payload,
                                  std::string* response) {
  using rpc::DispatchTyped;
  switch (method) {
    case rpc::Method::kCentralCreate:
      return DispatchTyped<CreateRequest, CreateResponse>(
          payload, response, [this](const CreateRequest& req, CreateResponse* rsp) {
            if (!IsPow2(req.psize))
              return Status::InvalidArgument("psize must be a power of two");
            std::lock_guard<std::mutex> lock(mu_);
            BlobState st;
            st.psize = req.psize;
            st.versions.push_back(
                std::make_shared<const std::vector<PageRef>>());
            st.sizes.push_back(0);
            rsp->id = next_id_;
            blobs_.emplace(next_id_++, std::move(st));
            return Status::OK();
          });
    case rpc::Method::kCentralUpdate:
      return DispatchTyped<UpdateRequest, UpdateResponse>(
          payload, response, [this](const UpdateRequest& req, UpdateResponse* rsp) {
            uint64_t copied = 0;
            {
              std::lock_guard<std::mutex> lock(mu_);
              auto it = blobs_.find(req.id);
              if (it == blobs_.end()) return Status::NotFound("blob");
              BlobState& st = it->second;
              // Deep copy of the predecessor's full page table: this is
              // the O(total pages) cost per update that BlobSeer's shared
              // segment trees avoid.
              auto table = std::make_shared<std::vector<PageRef>>(
                  *st.versions.back());
              uint64_t needed = req.first_page + req.refs.size();
              if (table->size() < needed) table->resize(needed);
              for (size_t i = 0; i < req.refs.size(); i++) {
                (*table)[req.first_page + i] = req.refs[i];
              }
              copied = table->size();
              total_page_refs_ += copied;
              total_versions_++;
              st.sizes.push_back(std::max(st.sizes.back(), req.new_size));
              rsp->new_size = st.sizes.back();
              st.versions.push_back(std::move(table));
              rsp->version = st.versions.size() - 1;
            }
            // Outside the lock: the hook may suspend the (simulated) task.
            if (cost_hook_) cost_hook_(copied);
            return Status::OK();
          });
    case rpc::Method::kCentralGetLayout:
      return DispatchTyped<LayoutRequest, LayoutResponse>(
          payload, response, [this](const LayoutRequest& req, LayoutResponse* rsp) {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = blobs_.find(req.id);
            if (it == blobs_.end()) return Status::NotFound("blob");
            const BlobState& st = it->second;
            if (req.version >= st.versions.size())
              return Status::NotFound("version not published");
            const auto& table = *st.versions[req.version];
            if (req.first_page + req.num_pages > table.size())
              return Status::OutOfRange("layout range");
            rsp->refs.assign(table.begin() + req.first_page,
                             table.begin() + req.first_page + req.num_pages);
            return Status::OK();
          });
    case rpc::Method::kCentralGetRecent:
      return DispatchTyped<RecentRequest, RecentResponse>(
          payload, response, [this](const RecentRequest& req, RecentResponse* rsp) {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = blobs_.find(req.id);
            if (it == blobs_.end()) return Status::NotFound("blob");
            rsp->version = it->second.versions.size() - 1;
            rsp->size = it->second.sizes.back();
            return Status::OK();
          });
    default:
      return Status::NotSupported("central meta method");
  }
}

CentralMetaStats CentralMetaService::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CentralMetaStats st;
  st.blobs = blobs_.size();
  st.versions = total_versions_;
  st.page_refs = total_page_refs_;
  return st;
}

CentralMetaClient::CentralMetaClient(rpc::Transport* transport,
                                     std::string address, size_t channels)
    : address_(std::move(address)), pool_(transport, channels) {}

Result<BlobId> CentralMetaClient::Create(uint64_t psize) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  CreateRequest req{psize};
  CreateResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kCentralCreate, req, &rsp));
  return rsp.id;
}

Result<CentralUpdateResult> CentralMetaClient::Update(
    BlobId id, uint64_t first_page, const std::vector<PageRef>& refs,
    uint64_t new_size) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  UpdateRequest req;
  req.id = id;
  req.first_page = first_page;
  req.new_size = new_size;
  req.refs = refs;
  UpdateResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kCentralUpdate, req, &rsp));
  return CentralUpdateResult{rsp.version, rsp.new_size};
}

Result<std::vector<PageRef>> CentralMetaClient::GetLayout(BlobId id,
                                                          Version version,
                                                          uint64_t first_page,
                                                          uint64_t num_pages) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  LayoutRequest req{id, version, first_page, num_pages};
  LayoutResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kCentralGetLayout, req, &rsp));
  return std::move(rsp.refs);
}

Status CentralMetaClient::GetRecent(BlobId id, Version* version,
                                    uint64_t* size) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  RecentRequest req{id};
  RecentResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kCentralGetRecent, req, &rsp));
  *version = rsp.version;
  *size = rsp.size;
  return Status::OK();
}

}  // namespace blobseer::baseline
