#include "client/blob_client.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "meta/layout.h"

namespace blobseer::client {

using meta::MetaNode;
using meta::NodeKey;
using meta::PageFragment;
using vmanager::AssignTicket;

BlobClient::BlobClient(rpc::Transport* transport, std::string vmanager_address,
                       std::string pmanager_address,
                       std::vector<std::string> dht_nodes,
                       ClientOptions options, Clock* clock, Executor* executor)
    : transport_(transport),
      options_(options),
      clock_(clock ? clock : RealClock::Default()),
      owned_executor_(executor
                          ? nullptr
                          : std::make_unique<ThreadPoolExecutor>(
                                options.io_threads)),
      executor_(executor ? executor : owned_executor_.get()),
      vm_(transport, std::move(vmanager_address),
          options.channels_per_endpoint),
      pm_(transport, std::move(pmanager_address),
          options.channels_per_endpoint),
      dht_(transport, std::move(dht_nodes),
           [&options] {
             dht::DhtClientOptions o = options.dht;
             o.channels_per_endpoint = options.channels_per_endpoint;
             return o;
           }()),
      meta_(&dht_, executor_,
            meta::MetaClientOptions{options.cache_metadata,
                                    options.cache_capacity,
                                    options.meta_fanout}),
      providers_(transport, options.channels_per_endpoint) {
  // Non-zero, process-unique prefix for page ids.
  Rng rng(RealClock::Default()->NowMicros() ^
          reinterpret_cast<uintptr_t>(this));
  do {
    client_id_ = rng.Next();
  } while (client_id_ == 0);
}

BlobClient::~BlobClient() = default;

PageId BlobClient::NewPageId() {
  return PageId{client_id_, page_seq_.fetch_add(1, std::memory_order_relaxed)};
}

Result<BlobDescriptor> BlobClient::Descriptor(BlobId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = descriptors_.find(id);
    if (it != descriptors_.end()) return it->second;
  }
  return Open(id);
}

Result<BlobId> BlobClient::Create(uint64_t psize) {
  auto desc = vm_.CreateBlob(psize);
  if (!desc.ok()) return desc.status();
  std::lock_guard<std::mutex> lock(mu_);
  BlobId id = desc->id;
  descriptors_[id] = std::move(desc).ValueUnsafe();
  return id;
}

Result<BlobDescriptor> BlobClient::Open(BlobId id) {
  auto desc = vm_.OpenBlob(id, nullptr, nullptr);
  if (!desc.ok()) return desc.status();
  std::lock_guard<std::mutex> lock(mu_);
  descriptors_[id] = *desc;
  return std::move(desc).ValueUnsafe();
}

std::vector<BlobClient::PageWrite> BlobClient::SplitIntoPages(
    Slice data, uint64_t offset, uint64_t psize) const {
  std::vector<PageWrite> out;
  uint64_t end = offset + data.size();
  uint64_t first = offset / psize;
  uint64_t last = (end - 1) / psize;
  out.reserve(last - first + 1);
  for (uint64_t p = first; p <= last; p++) {
    Extent page{p * psize, psize};
    uint64_t seg_begin = std::max(offset, page.offset);
    uint64_t seg_end = std::min(end, page.end());
    PageWrite w;
    w.page_index = p;
    w.frag.page_off = static_cast<uint32_t>(seg_begin - page.offset);
    w.frag.len = static_cast<uint32_t>(seg_end - seg_begin);
    w.frag.data_off = 0;
    w.bytes = data.SubSlice(seg_begin - offset, seg_end - seg_begin);
    out.push_back(w);
  }
  return out;
}

Status BlobClient::StorePages(std::vector<PageWrite>* writes) {
  auto provider_ids = pm_.Allocate(static_cast<uint32_t>(writes->size()));
  if (!provider_ids.ok()) return provider_ids.status();
  std::vector<std::string> addresses(writes->size());
  for (size_t i = 0; i < writes->size(); i++) {
    (*writes)[i].frag.pid = NewPageId();
    (*writes)[i].frag.provider = (*provider_ids)[i];
    auto addr = ProviderAddress((*provider_ids)[i]);
    if (!addr.ok()) return addr.status();
    addresses[i] = std::move(addr).ValueUnsafe();
  }
  BS_RETURN_NOT_OK(executor_->ParallelFor(
      writes->size(), options_.data_fanout, [&](size_t i) {
        const PageWrite& w = (*writes)[i];
        return providers_.WritePage(addresses[i], w.frag.pid, w.bytes);
      }));
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.pages_stored += writes->size();
  return Status::OK();
}

void BlobClient::DeletePages(const std::vector<PageWrite>& writes) {
  (void)executor_->ParallelFor(
      writes.size(), options_.data_fanout, [&](size_t i) {
        if (!writes[i].frag.pid.valid()) return Status::OK();
        auto addr = ProviderAddress(writes[i].frag.provider);
        if (!addr.ok()) return Status::OK();
        (void)providers_.DeletePage(*addr, writes[i].frag.pid);
        return Status::OK();
      });
}

Result<std::string> BlobClient::ProviderAddress(ProviderId id) {
  return pm_.ResolveAddress(id);
}

Status BlobClient::BuildAndWriteMeta(const BlobDescriptor& desc,
                                     const AssignTicket& ticket,
                                     std::vector<PageWrite>* writes) {
  const uint64_t psize = desc.psize;
  const Extent range = ticket.range();
  const BranchAncestry ancestry = desc.Ancestry();
  const Version vw = ticket.version;

  std::map<Extent, Version> border_map;
  for (const auto& b : ticket.borders) border_map[b.block] = b.version;
  meta::MetaClient::NodeMemo memo;  // shared across this update's descents
  auto resolve = [&](const Extent& block) -> Result<Version> {
    auto it = border_map.find(block);
    if (it != border_map.end()) return it->second;
    return meta_.ResolveBlockVersion(ancestry, ticket.published,
                                     ticket.published_size, psize, block,
                                     &memo);
  };

  std::vector<std::pair<NodeKey, MetaNode>> nodes;
  const BlobId self_origin = ancestry.Resolve(vw);

  // --- Leaves (paper Algorithm 4, first loop). ---
  for (PageWrite& w : *writes) {
    Extent block{w.page_index * psize, psize};
    // Content length of this page in the new and old snapshots.
    uint64_t cs_new =
        std::min(block.end(), ticket.new_size) - block.offset;
    uint64_t cs_old =
        block.offset >= ticket.old_size
            ? 0
            : std::min(block.end(), ticket.old_size) - block.offset;
    uint64_t frag_end = w.frag.page_off + w.frag.len;
    bool head_missing = w.frag.page_off > 0;
    bool tail_missing = frag_end < cs_new;
    bool needs_prev = head_missing || tail_missing;

    if (!needs_prev) {
      nodes.emplace_back(NodeKey{self_origin, vw, block},
                         MetaNode::Leaf({w.frag}, kNoVersion, 1));
      continue;
    }

    BS_ASSIGN_OR_RETURN(Version prev, resolve(block));
    if (prev == kNoVersion) {
      return Status::Internal("missing previous leaf for partial page at " +
                              block.ToString());
    }

    uint32_t chain = meta::kUnknownChainLen;
    MetaNode prev_leaf;
    bool have_prev_leaf = false;
    if (prev <= ticket.published) {
      // The previous leaf is published, hence readable: learn its chain
      // length and compact if the chain grew too long.
      auto pl = meta_.GetNode(
          NodeKey{ancestry.Resolve(prev), prev, block});
      if (!pl.ok()) return pl.status();
      prev_leaf = std::move(pl).ValueUnsafe();
      have_prev_leaf = true;
      if (prev_leaf.chain_len != meta::kUnknownChainLen &&
          prev_leaf.chain_len + 1 <= options_.max_chain) {
        chain = prev_leaf.chain_len + 1;
      }
    }

    if (have_prev_leaf && chain == meta::kUnknownChainLen) {
      // Compaction: materialize the merged page so the chain resets.
      std::string merged(cs_new, '\0');
      if (cs_old > 0) {
        std::vector<FetchPiece> pieces;
        BS_RETURN_NOT_OK(ResolveLeafPieces(ancestry, block, prev_leaf,
                                           {Interval{0, cs_old}}, &pieces));
        BS_RETURN_NOT_OK(FetchPieces(pieces, 0, 0, merged.data()));
      }
      std::memcpy(merged.data() + w.frag.page_off, w.bytes.data(),
                  w.bytes.size());
      PageWrite compacted;
      compacted.page_index = w.page_index;
      compacted.frag.page_off = 0;
      compacted.frag.len = static_cast<uint32_t>(cs_new);
      compacted.frag.data_off = 0;
      compacted.bytes = Slice(merged);
      std::vector<PageWrite> one{compacted};
      BS_RETURN_NOT_OK(StorePages(&one));
      nodes.emplace_back(NodeKey{self_origin, vw, block},
                         MetaNode::Leaf({one[0].frag}, kNoVersion, 1));
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.compactions++;
      }
      continue;
    }

    nodes.emplace_back(NodeKey{self_origin, vw, block},
                       MetaNode::Leaf({w.frag}, prev, chain));
  }

  // --- Inner nodes, bottom-up (paper Algorithm 4, second loop). ---
  for (const Extent& block :
       meta::UpdateNodeSet(range, ticket.new_size, psize)) {
    if (meta::IsLeafBlock(block, psize)) continue;
    Extent left = meta::LeftChildBlock(block);
    Extent right = meta::RightChildBlock(block);
    Version vl, vr;
    if (left.Intersects(range)) {
      vl = vw;
    } else {
      BS_ASSIGN_OR_RETURN(vl, resolve(left));
    }
    if (right.Intersects(range)) {
      vr = vw;
    } else {
      BS_ASSIGN_OR_RETURN(vr, resolve(right));
    }
    nodes.emplace_back(NodeKey{self_origin, vw, block},
                       MetaNode::Inner(vl, vr));
  }

  BS_RETURN_NOT_OK(meta_.WriteNodes(nodes));
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.meta_nodes_written += nodes.size();
  return Status::OK();
}

Result<Version> BlobClient::Write(BlobId id, Slice data, uint64_t offset) {
  if (data.empty()) return Status::InvalidArgument("empty write");
  BS_ASSIGN_OR_RETURN(BlobDescriptor desc, Descriptor(id));

  // Paper Algorithm 2: store the new pages first, fully in parallel, with
  // no synchronization; only then register the update.
  std::vector<PageWrite> writes = SplitIntoPages(data, offset, desc.psize);
  Status stored = StorePages(&writes);
  if (!stored.ok()) {
    DeletePages(writes);
    return stored;
  }

  auto ticket = vm_.AssignVersion(id, /*is_append=*/false, offset, data.size());
  if (!ticket.ok()) {
    DeletePages(writes);
    return ticket.status();
  }

  Status built = BuildAndWriteMeta(desc, *ticket, &writes);
  if (!built.ok()) {
    (void)Abort(id, ticket->version);
    return built;
  }
  BS_RETURN_NOT_OK(vm_.NotifySuccess(id, ticket->version));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.writes++;
    stats_.bytes_written += data.size();
  }
  return ticket->version;
}

Result<Version> BlobClient::Append(BlobId id, Slice data) {
  if (data.empty()) return Status::InvalidArgument("empty append");
  BS_ASSIGN_OR_RETURN(BlobDescriptor desc, Descriptor(id));

  // Appends learn their offset from the version manager (paper section
  // 3.3); with unaligned blob sizes the page split depends on it, so the
  // version is assigned before the pages are stored (DESIGN.md 3.3).
  auto ticket = vm_.AssignVersion(id, /*is_append=*/true, 0, data.size());
  if (!ticket.ok()) return ticket.status();

  std::vector<PageWrite> writes =
      SplitIntoPages(data, ticket->offset, desc.psize);
  Status st = StorePages(&writes);
  if (st.ok()) st = BuildAndWriteMeta(desc, *ticket, &writes);
  if (!st.ok()) {
    (void)Abort(id, ticket->version);
    return st;
  }
  BS_RETURN_NOT_OK(vm_.NotifySuccess(id, ticket->version));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.appends++;
    stats_.bytes_written += data.size();
  }
  return ticket->version;
}

Status BlobClient::ResolveLeafPieces(const BranchAncestry& ancestry,
                                     const Extent& block,
                                     const meta::MetaNode& leaf,
                                     std::vector<Interval> needed,
                                     std::vector<FetchPiece>* out) {
  MetaNode cur = leaf;
  for (;;) {
    // Overlay this leaf's fragments onto whatever is still uncovered.
    for (const PageFragment& frag : cur.fragments) {
      uint64_t fb = frag.page_off;
      uint64_t fe = frag.page_off + frag.len;
      std::vector<Interval> rest;
      rest.reserve(needed.size() + 1);
      for (const Interval& iv : needed) {
        uint64_t ob = std::max(iv.begin, fb);
        uint64_t oe = std::min(iv.end, fe);
        if (ob >= oe) {
          rest.push_back(iv);
          continue;
        }
        out->push_back(FetchPiece{frag.pid, frag.provider,
                                  frag.data_off + (ob - fb), oe - ob, ob});
        if (iv.begin < ob) rest.push_back(Interval{iv.begin, ob});
        if (oe < iv.end) rest.push_back(Interval{oe, iv.end});
      }
      needed = std::move(rest);
      if (needed.empty()) return Status::OK();
    }
    if (cur.prev_version == kNoVersion) {
      return Status::Corruption("page bytes not covered by fragment chain at " +
                                block.ToString());
    }
    auto next = meta_.GetNode(
        NodeKey{ancestry.Resolve(cur.prev_version), cur.prev_version, block});
    if (!next.ok()) return next.status();
    cur = std::move(next).ValueUnsafe();
  }
}

Status BlobClient::FetchPieces(const std::vector<FetchPiece>& pieces,
                               uint64_t page_base, uint64_t range_offset,
                               char* dst) {
  std::vector<std::string> addresses(pieces.size());
  for (size_t i = 0; i < pieces.size(); i++) {
    auto addr = ProviderAddress(pieces[i].provider);
    if (!addr.ok()) return addr.status();
    addresses[i] = std::move(addr).ValueUnsafe();
  }
  return executor_->ParallelFor(
      pieces.size(), options_.data_fanout, [&](size_t i) {
        const FetchPiece& p = pieces[i];
        std::string chunk;
        BS_RETURN_NOT_OK(providers_.ReadPage(addresses[i], p.pid, p.src_off,
                                             p.len, &chunk));
        if (chunk.size() != p.len)
          return Status::Corruption("short page read");
        std::memcpy(dst + (page_base + p.page_local_off - range_offset),
                    chunk.data(), chunk.size());
        return Status::OK();
      });
}

Status BlobClient::Read(BlobId id, Version version, uint64_t offset,
                        uint64_t size, std::string* out) {
  BS_ASSIGN_OR_RETURN(BlobDescriptor desc, Descriptor(id));
  // GET_SIZE doubles as the publication check (paper Algorithm 1 line 1).
  auto blob_size = vm_.GetSize(id, version);
  if (!blob_size.ok()) return blob_size.status();
  if (offset + size > *blob_size)
    return Status::OutOfRange(
        StrFormat("read [%llu,+%llu) beyond snapshot size %llu",
                  static_cast<unsigned long long>(offset),
                  static_cast<unsigned long long>(size),
                  static_cast<unsigned long long>(*blob_size)));
  out->clear();
  out->resize(size);
  if (size == 0) return Status::OK();

  const BranchAncestry ancestry = desc.Ancestry();
  const Extent range{offset, size};
  std::vector<meta::LeafRef> leaves;
  BS_RETURN_NOT_OK(meta_.ReadMeta(ancestry, version, *blob_size, desc.psize,
                                  range, &leaves));

  // Resolve fragment chains per leaf (parallel across leaves), then fetch
  // all pieces in one parallel wave.
  std::vector<std::vector<FetchPiece>> per_leaf(leaves.size());
  BS_RETURN_NOT_OK(executor_->ParallelFor(
      leaves.size(), options_.meta_fanout, [&](size_t i) {
        const meta::LeafRef& leaf = leaves[i];
        Extent needed_abs = leaf.block.Clip(range);
        Interval needed{needed_abs.offset - leaf.block.offset,
                        needed_abs.end() - leaf.block.offset};
        return ResolveLeafPieces(ancestry, leaf.block, leaf.node, {needed},
                                 &per_leaf[i]);
      }));

  std::vector<FetchPiece> pieces;
  std::vector<uint64_t> bases;
  for (size_t i = 0; i < leaves.size(); i++) {
    for (const FetchPiece& p : per_leaf[i]) {
      pieces.push_back(p);
      bases.push_back(leaves[i].block.offset);
    }
  }
  // FetchPieces assumes one base per call; inline the fetch here instead to
  // allow mixed bases in a single parallel wave.
  std::vector<std::string> addresses(pieces.size());
  for (size_t i = 0; i < pieces.size(); i++) {
    auto addr = ProviderAddress(pieces[i].provider);
    if (!addr.ok()) return addr.status();
    addresses[i] = std::move(addr).ValueUnsafe();
  }
  BS_RETURN_NOT_OK(executor_->ParallelFor(
      pieces.size(), options_.data_fanout, [&](size_t i) {
        const FetchPiece& p = pieces[i];
        std::string chunk;
        BS_RETURN_NOT_OK(providers_.ReadPage(addresses[i], p.pid, p.src_off,
                                             p.len, &chunk));
        if (chunk.size() != p.len)
          return Status::Corruption("short page read");
        std::memcpy(out->data() + (bases[i] + p.page_local_off - offset),
                    chunk.data(), chunk.size());
        return Status::OK();
      }));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.reads++;
    stats_.bytes_read += size;
  }
  return Status::OK();
}

Result<Version> BlobClient::GetRecent(BlobId id, uint64_t* size) {
  Version v;
  uint64_t sz;
  BS_RETURN_NOT_OK(vm_.GetRecent(id, &v, &sz));
  if (size) *size = sz;
  return v;
}

Result<uint64_t> BlobClient::GetSize(BlobId id, Version version) {
  return vm_.GetSize(id, version);
}

Status BlobClient::Sync(BlobId id, Version version, uint64_t timeout_us) {
  const uint64_t slice_us = 250 * 1000;
  uint64_t waited = 0;
  for (;;) {
    uint64_t remaining =
        timeout_us == kNoTimeout ? slice_us : timeout_us - waited;
    uint64_t server_wait =
        options_.blocking_sync ? std::min(remaining, slice_us) : 0;
    Status s = vm_.AwaitPublished(id, version, server_wait);
    if (s.ok()) return s;
    if (!s.IsTimedOut()) return s;
    uint64_t step = server_wait;
    if (!options_.blocking_sync) {
      uint64_t nap = std::min<uint64_t>(options_.sync_poll_us, remaining);
      clock_->SleepForMicros(nap);
      step = nap;
    }
    if (timeout_us != kNoTimeout) {
      waited += step;
      if (waited >= timeout_us) return Status::TimedOut("SYNC timeout");
    }
  }
}

Result<BlobId> BlobClient::Branch(BlobId id, Version version) {
  auto desc = vm_.Branch(id, version);
  if (!desc.ok()) return desc.status();
  std::lock_guard<std::mutex> lock(mu_);
  BlobId bid = desc->id;
  descriptors_[bid] = std::move(desc).ValueUnsafe();
  return bid;
}

Status BlobClient::Abort(BlobId id, Version version) {
  BS_ASSIGN_OR_RETURN(BlobDescriptor desc, Descriptor(id));
  auto outcome = vm_.AbortUpdate(id, version);
  if (!outcome.ok()) return outcome.status();
  if (outcome->retracted) return Status::OK();

  // Repair: replay the aborted update as zeros (DESIGN.md 3.3) so that
  // every node key later updates may have border-referenced exists.
  const AssignTicket& ticket = outcome->repair;
  std::string zeros(ticket.size, '\0');
  std::vector<PageWrite> writes =
      SplitIntoPages(Slice(zeros), ticket.offset, desc.psize);
  BS_RETURN_NOT_OK(StorePages(&writes));
  BS_RETURN_NOT_OK(BuildAndWriteMeta(desc, ticket, &writes));
  BS_RETURN_NOT_OK(vm_.NotifySuccess(id, version));
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.repairs++;
  return Status::OK();
}

ClientStats BlobClient::GetStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace blobseer::client
