#include "client/blob_client.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "meta/layout.h"

namespace blobseer::client {

using meta::MetaNode;
using meta::NodeKey;
using meta::PageFragment;
using vmanager::AssignTicket;

// Shared state of one WRITE/APPEND (or abort-repair) chain. Everything a
// stage borrows — the page split, the caller's payload view, compaction
// buffers, the node batch — hangs off this object, which every continuation
// captures by shared_ptr, so buffers live exactly as long as the operation.
struct BlobClient::UpdateOp {
  BlobClient* c = nullptr;
  BlobId id = kInvalidBlobId;
  Slice data;         // caller's buffer (WRITE/APPEND) or `zeros` below
  std::string zeros;  // abort-repair payload
  uint64_t offset = 0;
  bool is_append = false;

  BlobDescriptor desc;
  AssignTicket ticket;
  std::shared_ptr<PageWriteBatch> batch;

  // Metadata-build state (initialized by BuildAndWriteMetaAsync).
  BranchAncestry ancestry;
  BlobId self_origin = kInvalidBlobId;
  std::map<Extent, Version> border_map;
  std::shared_ptr<meta::MetaClient::SharedNodeMemo> memo;
  std::mutex mu;  // guards nodes + merged (leaves build concurrently)
  std::vector<std::pair<NodeKey, MetaNode>> nodes;
  std::vector<std::shared_ptr<std::string>> merged;  // compaction buffers

  Promise<Version> promise;

  void AddNode(const Extent& block, MetaNode node) {
    std::lock_guard<std::mutex> lock(mu);
    nodes.emplace_back(NodeKey{self_origin, ticket.version, block},
                       std::move(node));
  }
};

struct BlobClient::ReadOp {
  BlobClient* c = nullptr;
  BlobId id = kInvalidBlobId;
  Version version = kNoVersion;
  uint64_t offset = 0;
  uint64_t size = 0;
  BlobDescriptor desc;
  BranchAncestry ancestry;
  std::string out;
  std::vector<meta::LeafRef> leaves;
  Promise<std::string> promise;
};

struct BlobClient::SyncOp {
  BlobClient* c = nullptr;
  BlobId id = kInvalidBlobId;
  Version version = kNoVersion;
  uint64_t timeout_us = kNoTimeout;
  uint64_t waited = 0;
  Promise<Unit> promise;

  // Server-push mode (blocking_sync): a single AwaitPublished RPC carries
  // the full timeout; the server parks a subscription and completes the
  // response from the publisher (or its timeout watchdog), so the client
  // hears about publication one network trip after it happens — no re-armed
  // wait slices, and no thread held anywhere in between.
  void Subscribe(const std::shared_ptr<SyncOp>& self) {
    c->vm_.AwaitPublishedAsync(id, version, timeout_us)
        .OnReady(nullptr, [self](Result<Unit> r) {
          if (r.ok()) {
            self->promise.Set(Unit{});
          } else {
            self->promise.Set(r.status());
          }
        });
  }

  // Polling fallback (blocking_sync = false): non-blocking probes separated
  // by sync_poll_us naps taken on an executor task. Kept as an operational
  // knob for deployments that would rather trade publication latency than
  // hold server-side subscription state.
  void Step(const std::shared_ptr<SyncOp>& self) {
    c->vm_.AwaitPublishedAsync(id, version, 0)
        .OnReady(nullptr, [self](Result<Unit> r) {
          if (r.ok()) {
            self->promise.Set(Unit{});
            return;
          }
          if (!r.status().IsTimedOut()) {
            self->promise.Set(r.status());
            return;
          }
          uint64_t remaining = self->timeout_us == kNoTimeout
                                   ? UINT64_MAX
                                   : self->timeout_us - self->waited;
          // Sleep first, charge after: the final (partial) nap must
          // elapse before the timeout fires, like the classic poll loop.
          uint64_t nap =
              std::min<uint64_t>(self->c->options_.sync_poll_us, remaining);
          self->c->executor_->Schedule([self, nap] {
            self->c->clock_->SleepForMicros(nap);
            if (!self->Account(nap)) return;
            self->Step(self);
          });
        });
  }

  /// Charges `step` against the timeout; false (after failing the promise)
  /// when the budget is exhausted.
  bool Account(uint64_t step) {
    if (timeout_us == kNoTimeout) return true;
    waited += step;
    if (waited >= timeout_us) {
      promise.Set(Status::TimedOut("SYNC timeout"));
      return false;
    }
    return true;
  }
};

BlobClient::BlobClient(rpc::Transport* transport, std::string vmanager_address,
                       std::string pmanager_address,
                       std::vector<std::string> dht_nodes,
                       ClientOptions options, Clock* clock, Executor* executor)
    : transport_(transport),
      options_(options),
      clock_(clock ? clock : RealClock::Default()),
      owned_executor_(executor
                          ? nullptr
                          : std::make_unique<ThreadPoolExecutor>(
                                options.io_threads)),
      executor_(executor ? executor : owned_executor_.get()),
      vm_(transport, std::move(vmanager_address),
          options.channels_per_endpoint),
      pm_(transport, std::move(pmanager_address),
          options.channels_per_endpoint),
      dht_(transport, std::move(dht_nodes),
           [&options] {
             dht::DhtClientOptions o = options.dht;
             o.channels_per_endpoint = options.channels_per_endpoint;
             return o;
           }()),
      locator_(&dht_, options.cache_capacity),
      meta_(&dht_, executor_,
            meta::MetaClientOptions{options.cache_metadata,
                                    options.cache_capacity,
                                    options.meta_fanout}),
      providers_(transport, options.channels_per_endpoint) {
  // A zero (or near-zero) poll interval would busy-spin probe RPCs through
  // the executor for the whole wait; enforce a floor.
  options_.sync_poll_us = std::max<uint64_t>(options_.sync_poll_us, 50);
  // Non-zero, process-unique prefix for page ids.
  Rng rng(RealClock::Default()->NowMicros() ^
          reinterpret_cast<uintptr_t>(this));
  do {
    client_id_ = rng.Next();
  } while (client_id_ == 0);
}

BlobClient::~BlobClient() { DrainDetachedOps(); }

void BlobClient::PageWriteBatch::PutsStarted() {
  std::lock_guard<std::mutex> lock(mu);
  inflight_puts++;
}

void BlobClient::PageWriteBatch::PutsSettled() {
  std::vector<Promise<Unit>> ready;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (--inflight_puts == 0) ready.swap(idle_waiters);
  }
  for (Promise<Unit>& p : ready) p.Set(Unit{});
}

Future<Unit> BlobClient::PageWriteBatch::WhenPutsSettled() {
  std::lock_guard<std::mutex> lock(mu);
  if (inflight_puts == 0) return MakeReadyFuture(Status::OK());
  idle_waiters.emplace_back();
  return idle_waiters.back().GetFuture();
}

void BlobClient::BeginDetachedOp() {
  std::lock_guard<std::mutex> lock(detached_mu_);
  detached_ops_++;
}

void BlobClient::EndDetachedOp() {
  std::shared_ptr<WaitEvent> waiter;
  {
    std::lock_guard<std::mutex> lock(detached_mu_);
    if (--detached_ops_ == 0) waiter = std::move(detached_waiter_);
  }
  if (waiter) waiter->Signal();
}

void BlobClient::DrainDetachedOps() {
  for (;;) {
    std::shared_ptr<WaitEvent> event;
    {
      std::lock_guard<std::mutex> lock(detached_mu_);
      if (detached_ops_ == 0) return;
      event = executor_->MakeWaitEvent();
      detached_waiter_ = event;
    }
    event->Await();
  }
}

PageId BlobClient::NewPageId() {
  return PageId{client_id_, page_seq_.fetch_add(1, std::memory_order_relaxed)};
}

Future<BlobDescriptor> BlobClient::DescriptorAsync(BlobId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = descriptors_.find(id);
    if (it != descriptors_.end())
      return MakeReadyFuture<BlobDescriptor>(BlobDescriptor(it->second));
  }
  return OpenAsync(id);
}

Future<BlobId> BlobClient::CreateAsync(uint64_t psize) {
  return vm_.CreateBlobAsync(psize).Then(
      [this](Result<BlobDescriptor> desc) -> Result<BlobId> {
        if (!desc.ok()) return desc.status();
        std::lock_guard<std::mutex> lock(mu_);
        BlobId id = desc->id;
        descriptors_[id] = std::move(desc).ValueUnsafe();
        return id;
      });
}

Future<BlobDescriptor> BlobClient::OpenAsync(BlobId id) {
  return vm_.OpenBlobAsync(id).Then(
      [this, id](Result<vmanager::OpenInfo> info) -> Result<BlobDescriptor> {
        if (!info.ok()) return info.status();
        std::lock_guard<std::mutex> lock(mu_);
        descriptors_[id] = info->descriptor;
        return std::move(info->descriptor);
      });
}

std::vector<BlobClient::PageWrite> BlobClient::SplitIntoPages(
    Slice data, uint64_t offset, uint64_t psize) const {
  std::vector<PageWrite> out;
  uint64_t end = offset + data.size();
  uint64_t first = offset / psize;
  uint64_t last = (end - 1) / psize;
  out.reserve(last - first + 1);
  for (uint64_t p = first; p <= last; p++) {
    Extent page{p * psize, psize};
    uint64_t seg_begin = std::max(offset, page.offset);
    uint64_t seg_end = std::min(end, page.end());
    PageWrite w;
    w.page_index = p;
    w.frag.page_off = static_cast<uint32_t>(seg_begin - page.offset);
    w.frag.len = static_cast<uint32_t>(seg_end - seg_begin);
    w.frag.data_off = 0;
    w.bytes = data.SubSlice(seg_begin - offset, seg_end - seg_begin);
    out.push_back(w);
  }
  return out;
}

Future<Unit> BlobClient::RunWindowed(
    std::vector<std::function<Future<Unit>()>> tasks, size_t window) {
  if (tasks.empty()) return MakeReadyFuture(Status::OK());
  if (window == 0 || window >= tasks.size()) {
    // Unbounded: one parallel wave, no scheduling overhead.
    std::vector<Future<Unit>> all;
    all.reserve(tasks.size());
    for (auto& t : tasks) all.push_back(t());
    return WhenAll(std::move(all))
        .Then([](Result<std::vector<Result<Unit>>> rs) -> Status {
          if (!rs.ok()) return rs.status();
          return FirstError(*rs);
        });
  }
  struct WindowOp {
    BlobClient* c = nullptr;
    std::vector<std::function<Future<Unit>()>> tasks;
    std::mutex mu;
    size_t next = 0;
    size_t outstanding = 0;
    Status first_error;
    Promise<Unit> promise;

    void Launch(const std::shared_ptr<WindowOp>& self) {
      size_t i;
      {
        std::lock_guard<std::mutex> lock(mu);
        // A failed task stops the refill: a doomed operation (cleanup will
        // discard everything anyway) should not keep transferring pages.
        if (next >= tasks.size() || !first_error.ok()) return;
        i = next++;
        outstanding++;
      }
      tasks[i]().OnReady(nullptr, [self](Result<Unit> r) {
        bool done;
        bool refill;
        Status err;
        {
          std::lock_guard<std::mutex> lock(self->mu);
          self->outstanding--;
          if (!r.ok() && self->first_error.ok())
            self->first_error = r.status();
          refill = self->first_error.ok() && self->next < self->tasks.size();
          done = self->outstanding == 0 && !refill;
          err = self->first_error;
        }
        if (done) {
          self->promise.Set(err.ok() ? Result<Unit>(Unit{})
                                     : Result<Unit>(std::move(err)));
          return;
        }
        // Refill through the executor: on an inline-completing transport
        // a direct Launch here would recurse one frame per task.
        if (refill)
          self->c->executor_->Schedule([self] { self->Launch(self); });
      });
    }
  };
  auto op = std::make_shared<WindowOp>();
  op->c = this;
  op->tasks = std::move(tasks);
  Future<Unit> f = op->promise.GetFuture();
  for (size_t i = 0; i < window; i++) op->Launch(op);
  return f;
}

Future<Unit> BlobClient::StorePageReplicasAsync(
    std::shared_ptr<PageWriteBatch> batch, size_t index) {
  const PageWrite& w = batch->pages[index];
  std::vector<Future<std::string>> addresses;
  addresses.reserve(w.replicas.size());
  for (ProviderId p : w.replicas)
    addresses.push_back(pm_.ResolveAddressAsync(p));
  // Address resolution is a control-plane (directory) step: it fails only
  // when the provider manager is unreachable, so it is not absorbed by the
  // write quorum — an error here fails the page before any put is issued.
  return WhenAll(std::move(addresses))
      .Then([this, batch, index](Result<std::vector<Result<std::string>>>
                                     addrs) -> Future<Unit> {
        if (!addrs.ok()) return MakeReadyFuture(addrs.status());
        Status first = FirstError(*addrs);
        if (!first.ok()) return MakeReadyFuture(std::move(first));
        const PageWrite& w = batch->pages[index];
        const size_t total = addrs->size();
        // w of r: the page (and hence the update) acks once `needed`
        // replicas accepted. The location entry still lists every replica —
        // a reader failing over past a replica that missed its put heals
        // it via read repair, so no wire change is needed.
        size_t needed = options_.write_quorum == 0
                            ? total
                            : std::min<size_t>(options_.write_quorum, total);
        if (needed == 0) needed = total;

        struct Quorum {
          BlobClient* c = nullptr;
          std::shared_ptr<PageWriteBatch> batch;
          size_t needed = 0;
          size_t total = 0;
          std::mutex mu;
          size_t oks = 0;
          size_t fails = 0;
          bool acked = false;
          Status first_error;
          Promise<Unit> promise;
        };
        auto q = std::make_shared<Quorum>();
        q->c = this;
        q->batch = batch;
        q->needed = needed;
        q->total = total;
        Future<Unit> f = q->promise.GetFuture();
        // Stragglers past the quorum ack keep running detached; the
        // barrier (and the client-level detached counter) hold cleanup and
        // destruction until every put settled. Registered before the puts
        // launch so an inline-completing transport cannot settle first.
        batch->PutsStarted();
        BeginDetachedOp();
        // All r puts launch now — each serializes `w.bytes` into its
        // request before returning, so the caller's payload is not
        // referenced after this loop (stragglers outlive the op future).
        for (size_t j = 0; j < total; j++) {
          providers_.WritePageAsync(*(*addrs)[j], w.frag.pid, w.bytes)
              .OnReady(nullptr, [q](Result<Unit> put) {
                bool ack = false;
                bool done = false;
                Status outcome;  // OK unless this ack reports failure
                {
                  std::lock_guard<std::mutex> lock(q->mu);
                  if (put.ok()) {
                    q->oks++;
                  } else {
                    q->fails++;
                    if (q->first_error.ok()) q->first_error = put.status();
                  }
                  done = q->oks + q->fails == q->total;
                  if (!q->acked && q->oks >= q->needed) {
                    q->acked = true;
                    ack = true;
                  } else if (!q->acked && done) {
                    // Every replica settled short of the quorum. Failing
                    // only now (not at the first fatal miss) keeps the
                    // failure path free of put-vs-delete races.
                    q->acked = true;
                    ack = true;
                    outcome = q->first_error;
                  }
                }
                if (done) {
                  if (q->fails > 0 && outcome.ok()) {
                    std::lock_guard<std::mutex> lock(q->c->stats_mu_);
                    q->c->stats_.degraded_writes++;
                  }
                  q->batch->PutsSettled();
                  q->c->EndDetachedOp();
                }
                if (ack) {
                  q->promise.Set(outcome.ok() ? Result<Unit>(Unit{})
                                              : Result<Unit>(outcome));
                }
              });
        }
        return f;
      });
}

Future<Unit> BlobClient::StorePagesAsync(
    std::shared_ptr<PageWriteBatch> batch) {
  // Paper Algorithm 2 with replication: allocate a replica set per page,
  // then store every page on its replicas with no synchronization between
  // pages. max_inflight_pages caps concurrent page transfers so a huge
  // replicated update does not buffer update x r at once.
  return pm_
      .AllocateReplicatedAsync(static_cast<uint32_t>(batch->pages.size()),
                               options_.replication)
      .Then([this, batch](Result<std::vector<std::vector<ProviderId>>> sets)
                -> Future<Unit> {
        if (!sets.ok()) return MakeReadyFuture(sets.status());
        std::vector<std::function<Future<Unit>()>> tasks;
        tasks.reserve(batch->pages.size());
        const bool dedup = options_.dedup;
        for (size_t i = 0; i < batch->pages.size(); i++) {
          batch->pages[i].frag.pid = NewPageId();
          batch->pages[i].replicas = std::move((*sets)[i]);
          if (dedup && batch->pages[i].bytes.size() > 0) {
            tasks.push_back(
                [this, batch, i] { return StorePageDedupAsync(batch, i); });
          } else {
            tasks.push_back(
                [this, batch, i] { return StorePageReplicasAsync(batch, i); });
          }
        }
        return RunWindowed(std::move(tasks), options_.max_inflight_pages)
            .Then([this, batch](Result<Unit> all) -> Future<Unit> {
              if (!all.ok()) return MakeReadyFuture(all.status());
              return PublishLocationsAsync(batch);
            })
            .Then([this, batch](Result<Unit> published) -> Status {
              if (!published.ok()) return published.status();
              size_t stored = 0;
              for (const PageWrite& w : batch->pages)
                if (!w.adopted) stored++;
              std::lock_guard<std::mutex> lock(stats_mu_);
              stats_.pages_stored += stored;
              stats_.locations_published += stored;
              return Status::OK();
            });
      });
}

Future<Unit> BlobClient::StorePageDedupAsync(
    std::shared_ptr<PageWriteBatch> batch, size_t index) {
  PageWrite& w = batch->pages[index];
  w.hash = lifecycle::HashPage(w.bytes);
  // Claim state kept alive across the chain (Cas borrows the Slices).
  struct Claim {
    std::string hkey;
    std::string target;
    std::string seen;  // the conflicting mapping, for the repair CAS
  };
  auto st = std::make_shared<Claim>();
  st->hkey = lifecycle::HashKey(w.hash);
  st->target = lifecycle::EncodeHashTarget(w.frag.pid);
  return dht_
      .CasAsync(Slice(st->hkey), Slice(), Slice(st->target),
                /*expect_absent=*/true)
      .Then([this, batch, index,
             st](Result<dht::CasResponse> cas) -> Future<Unit> {
        PageWrite& w = batch->pages[index];
        if (!cas.ok()) {
          // Dedup is best-effort: an unreachable 'H' replica must not fail
          // the write — store the page as if dedup were off.
          return StorePageReplicasAsync(batch, index);
        }
        if (cas->applied) {
          w.claimed_h = true;
          return StorePageReplicasAsync(batch, index);
        }
        Result<PageId> existing = lifecycle::DecodeHashTarget(cas->current);
        if (!existing.ok()) return StorePageReplicasAsync(batch, index);
        st->seen = std::move(cas->current);
        // Adoption must CAS a refs bump so it loses cleanly against a GC
        // condemn of the same entry (docs/lifecycle.md).
        return locator_.AdjustRefsAsync(*existing, +1)
            .Then([this, batch, index, st, pid = *existing](
                      Result<locator::LocationEntry> e) -> Future<Unit> {
              if (e.ok()) {
                PageWrite& w = batch->pages[index];
                w.frag.pid = pid;
                w.replicas = e->providers;
                w.adopted = true;
                std::lock_guard<std::mutex> lock(stats_mu_);
                stats_.dedup_hits++;
                return MakeReadyFuture(Status::OK());
              }
              // The holder was condemned or deleted under us (GC won the
              // race, or its publish has not landed yet): store fresh,
              // then best-effort repoint the mapping at our page. A lost
              // repair only costs future dedup hits, never correctness —
              // the sweeper deletes 'H' keys conditionally on their
              // target.
              return StorePageReplicasAsync(batch, index)
                  .Then([this, batch, index,
                         st](Result<Unit> stored) -> Future<Unit> {
                    if (!stored.ok())
                      return MakeReadyFuture(stored.status());
                    return dht_
                        .CasAsync(Slice(st->hkey), Slice(st->seen),
                                  Slice(st->target), /*expect_absent=*/false)
                        .Then([batch, index,
                               st](Result<dht::CasResponse> rep) -> Status {
                          if (rep.ok() && rep->applied)
                            batch->pages[index].claimed_h = true;
                          return Status::OK();
                        });
                  });
            });
      });
}

Future<Unit> BlobClient::PublishLocationsAsync(
    std::shared_ptr<PageWriteBatch> batch) {
  // Page ids are client-unique, so the entries are plain puts (epoch 1) —
  // no CAS needed on first publication. The wave must succeed: under v3
  // metadata the location entry is the only map from PageId to providers,
  // so a page whose entry is lost would be unreadable. A failure here fails
  // the update and the caller's cleanup deletes the stored pages.
  std::vector<Future<Unit>> puts;
  puts.reserve(batch->pages.size());
  for (const PageWrite& w : batch->pages) {
    // Adopted pages already have a live entry (their refcount bump proved
    // it); publishing again would reset its epoch history.
    if (w.adopted) continue;
    puts.push_back(
        locator_.PublishAsync(w.frag.pid, w.replicas, w.hash.hi, w.hash.lo));
  }
  return WhenAll(std::move(puts))
      .Then([this, batch](Result<std::vector<Result<Unit>>> rs)
                -> Future<Unit> {
        if (!rs.ok()) return MakeReadyFuture(rs.status());
        Status first = FirstError(*rs);
        if (!first.ok()) return MakeReadyFuture(std::move(first));
        // Feed the provider manager's location table so the rebuilder can
        // heal these pages. Required, not best-effort: a page the table
        // never learns about would silently stay under-replicated after a
        // provider loss. Adopted pages are already in the table from their
        // original publisher.
        pmanager::ReportLocationsRequest report;
        report.added.reserve(batch->pages.size());
        for (const PageWrite& w : batch->pages) {
          if (w.adopted) continue;
          report.added.push_back(
              pmanager::PageLocationInfo{w.frag.pid, 1, w.replicas});
        }
        if (report.added.empty()) return MakeReadyFuture(Status::OK());
        return pm_.ReportLocationsAsync(std::move(report));
      });
}

Future<Unit> BlobClient::DeletePagesAsync(
    std::shared_ptr<PageWriteBatch> batch) {
  // Wait for the straggler barrier first: a put still in flight when the
  // cleanup starts could land after the delete and resurrect the page.
  return batch->WhenPutsSettled().Then([this, batch](
                                           Result<Unit>) -> Future<Unit> {
    std::vector<Future<Unit>> deletions;
    pmanager::ReportLocationsRequest report;
    for (const PageWrite& w : batch->pages) {
      if (!w.frag.pid.valid()) continue;
      locator_.Invalidate(w.frag.pid);
      if (w.claimed_h) {
        // Retract our 'H' claim first so no new adoption arrives while
        // this page unwinds.
        deletions.push_back(UnlinkHashAsync(w.hash, w.frag.pid));
      }
      if (w.hash.valid()) {
        // Dedup'd page: another writer may have adopted it since, so the
        // refcount decides. Our contribution is one reference; physical
        // deletion only happens when dropping it proves no one else holds
        // the page.
        deletions.push_back(
            locator_.AdjustRefsAsync(w.frag.pid, -1)
                .Then([this, pid = w.frag.pid, adopted = w.adopted,
                       replicas = w.replicas](
                          Result<locator::LocationEntry> e) -> Future<Unit> {
                  if (e.ok()) {
                    if (!e->condemned()) return MakeReadyFuture(Status::OK());
                    return PurgePageAsync(pid, e->providers);
                  }
                  // FailedPrecondition: the GC condemned the entry and owns
                  // the physical delete. NotFound on an adopted page: the
                  // entry is gone, nothing of ours to clean. NotFound on a
                  // page we stored: the publish never landed, so the copies
                  // are only findable through our local replica list.
                  if (e.status().IsNotFound() && !adopted)
                    return PurgePageAsync(pid, std::move(replicas));
                  return MakeReadyFuture(Status::OK());
                }));
        continue;
      }
      // Retract the page's location entry (cache, DHT, pmanager table) so
      // the rebuilder never tries to re-replicate a deleted page.
      report.removed.push_back(w.frag.pid);
      deletions.push_back(
          dht_.DeleteAsync(locator::LocationKey(w.frag.pid))
              .Then([](Result<Unit>) { return Status::OK(); }));
      // Every incarnation: each replica stored its own copy of the page.
      for (ProviderId provider : w.replicas) {
        deletions.push_back(
            pm_.ResolveAddressAsync(provider)
                .Then([this, pid = w.frag.pid](
                          Result<std::string> addr) -> Future<Unit> {
                  if (!addr.ok()) return MakeReadyFuture(Status::OK());
                  return providers_.DeletePageAsync(*addr, pid)
                      .Then([](Result<Unit>) { return Status::OK(); });
                }));
      }
    }
    if (!report.removed.empty())
      deletions.push_back(
          pm_.ReportLocationsAsync(std::move(report))
              .Then([](Result<Unit>) { return Status::OK(); }));
    return WhenAll(std::move(deletions))
        .Then([batch](Result<std::vector<Result<Unit>>>) {
          return Status::OK();  // best-effort by design
        });
  });
}

Future<Unit> BlobClient::UnlinkHashAsync(lifecycle::ContentHash hash,
                                         PageId pid) {
  auto hkey = std::make_shared<std::string>(lifecycle::HashKey(hash));
  return dht_.GetAsync(Slice(*hkey))
      .Then([this, hkey, pid](Result<std::string> cur) -> Future<Unit> {
        if (!cur.ok()) return MakeReadyFuture(Status::OK());
        Result<PageId> target = lifecycle::DecodeHashTarget(*cur);
        // Only unlink our own mapping: a repair CAS may already have
        // repointed the hash at someone else's live page.
        if (!target.ok() || *target != pid)
          return MakeReadyFuture(Status::OK());
        return dht_.DeleteAsync(Slice(*hkey))
            .Then([hkey](Result<Unit>) { return Status::OK(); });
      });
}

Future<Unit> BlobClient::PurgePageAsync(PageId pid,
                                        std::vector<ProviderId> replicas) {
  locator_.Invalidate(pid);
  std::vector<Future<Unit>> deletions;
  deletions.push_back(locator_.DeleteEntryAsync(pid).Then(
      [](Result<Unit>) { return Status::OK(); }));
  for (ProviderId provider : replicas) {
    deletions.push_back(
        pm_.ResolveAddressAsync(provider)
            .Then([this, pid](Result<std::string> addr) -> Future<Unit> {
              if (!addr.ok()) return MakeReadyFuture(Status::OK());
              return providers_.DeletePageAsync(*addr, pid)
                  .Then([](Result<Unit>) { return Status::OK(); });
            }));
  }
  return WhenAll(std::move(deletions))
      .Then([](Result<std::vector<Result<Unit>>>) { return Status::OK(); });
}

Future<Version> BlobClient::ResolveBorderAsync(std::shared_ptr<UpdateOp> op,
                                               const Extent& block) {
  auto it = op->border_map.find(block);
  if (it != op->border_map.end())
    return MakeReadyFuture<Version>(Version{it->second});
  return meta_.ResolveBlockVersionAsync(op->ancestry, op->ticket.published,
                                        op->ticket.published_size,
                                        op->desc.psize, block, op->memo);
}

Future<Unit> BlobClient::BuildLeafAsync(std::shared_ptr<UpdateOp> op,
                                        PageWrite* w) {
  const uint64_t psize = op->desc.psize;
  const AssignTicket& ticket = op->ticket;
  Extent block{w->page_index * psize, psize};
  // Content length of this page in the new and old snapshots.
  uint64_t cs_new = std::min(block.end(), ticket.new_size) - block.offset;
  uint64_t cs_old =
      block.offset >= ticket.old_size
          ? 0
          : std::min(block.end(), ticket.old_size) - block.offset;
  uint64_t frag_end = w->frag.page_off + w->frag.len;
  bool head_missing = w->frag.page_off > 0;
  bool tail_missing = frag_end < cs_new;
  if (!head_missing && !tail_missing) {
    op->AddNode(block, MetaNode::Leaf({w->frag}, kNoVersion, 1));
    return MakeReadyFuture(Status::OK());
  }

  return ResolveBorderAsync(op, block)
      .Then([this, op, w, block, cs_new,
             cs_old](Result<Version> prev_r) -> Future<Unit> {
        if (!prev_r.ok()) return MakeReadyFuture(prev_r.status());
        Version prev = *prev_r;
        if (prev == kNoVersion) {
          return MakeReadyFuture(Status::Internal(
              "missing previous leaf for partial page at " +
              block.ToString()));
        }
        if (prev > op->ticket.published) {
          // The previous leaf is still unpublished: link to it blindly
          // (chain length unknown; a later write compacts).
          op->AddNode(block,
                      MetaNode::Leaf({w->frag}, prev, meta::kUnknownChainLen));
          return MakeReadyFuture(Status::OK());
        }
        // The previous leaf is published, hence readable: learn its chain
        // length and compact if the chain grew too long.
        return meta_
            .GetNodeAsync(NodeKey{op->ancestry.Resolve(prev), prev, block})
            .Then([this, op, w, block, cs_new, cs_old,
                   prev](Result<MetaNode> prev_leaf_r) -> Future<Unit> {
              if (!prev_leaf_r.ok())
                return MakeReadyFuture(prev_leaf_r.status());
              MetaNode prev_leaf = std::move(prev_leaf_r).ValueUnsafe();
              if (prev_leaf.chain_len != meta::kUnknownChainLen &&
                  prev_leaf.chain_len + 1 <= options_.max_chain) {
                op->AddNode(block, MetaNode::Leaf({w->frag}, prev,
                                                  prev_leaf.chain_len + 1));
                return MakeReadyFuture(Status::OK());
              }
              // Compaction: materialize the merged page so the chain
              // resets. The merged buffer lives on the op.
              auto buffer = std::make_shared<std::string>(cs_new, '\0');
              {
                std::lock_guard<std::mutex> lock(op->mu);
                op->merged.push_back(buffer);
              }
              Future<Unit> filled =
                  cs_old == 0
                      ? MakeReadyFuture(Status::OK())
                      : ResolveLeafPiecesAsync(op->ancestry, block, prev_leaf,
                                               {Interval{0, cs_old}})
                            .Then([this, buffer](
                                      Result<std::vector<FetchPiece>> pieces)
                                      -> Future<Unit> {
                              if (!pieces.ok())
                                return MakeReadyFuture(pieces.status());
                              std::vector<uint64_t> bases(pieces->size(), 0);
                              return FetchPiecesIntoAsync(
                                  std::move(*pieces), std::move(bases), 0,
                                  buffer->data());
                            });
              return filled.Then([this, op, w, buffer,
                                  block](Result<Unit> r) -> Future<Unit> {
                if (!r.ok()) return MakeReadyFuture(r.status());
                std::memcpy(buffer->data() + w->frag.page_off,
                            w->bytes.data(), w->bytes.size());
                auto one = std::make_shared<PageWriteBatch>(1);
                one->pages[0].page_index = w->page_index;
                one->pages[0].frag.page_off = 0;
                one->pages[0].frag.len = static_cast<uint32_t>(buffer->size());
                one->pages[0].frag.data_off = 0;
                one->pages[0].bytes = Slice(*buffer);
                return StorePagesAsync(one).Then(
                    [this, op, one, block](Result<Unit> stored) -> Status {
                      if (!stored.ok()) return stored.status();
                      op->AddNode(block, MetaNode::Leaf({one->pages[0].frag},
                                                        kNoVersion, 1));
                      std::lock_guard<std::mutex> lock(stats_mu_);
                      stats_.compactions++;
                      return Status::OK();
                    });
              });
            });
      });
}

Future<Unit> BlobClient::BuildAndWriteMetaAsync(std::shared_ptr<UpdateOp> op) {
  op->ancestry = op->desc.Ancestry();
  op->self_origin = op->ancestry.Resolve(op->ticket.version);
  op->border_map.clear();
  for (const auto& b : op->ticket.borders) op->border_map[b.block] = b.version;
  // Shared across this update's descents: a writer resolving several border
  // blocks walks overlapping root-to-block paths.
  op->memo = std::make_shared<meta::MetaClient::SharedNodeMemo>();

  // --- Leaves (paper Algorithm 4, first loop), all in parallel. ---
  std::vector<Future<Unit>> leaves;
  leaves.reserve(op->batch->pages.size());
  for (PageWrite& w : op->batch->pages)
    leaves.push_back(BuildLeafAsync(op, &w));

  return WhenAll(std::move(leaves))
      .Then([this,
             op](Result<std::vector<Result<Unit>>> all) -> Future<Unit> {
        if (!all.ok()) return MakeReadyFuture(all.status());
        Status first = FirstError(*all);
        if (!first.ok()) return MakeReadyFuture(std::move(first));

        // --- Inner nodes (second loop): resolve non-updated children of
        // every new inner node, then assemble bottom-up. ---
        const uint64_t psize = op->desc.psize;
        const Extent range = op->ticket.range();
        const Version vw = op->ticket.version;
        struct InnerPlan {
          Extent block;
          Version left = kNoVersion;
          Version right = kNoVersion;
          int left_resolve = -1;   // index into `resolves`
          int right_resolve = -1;
        };
        auto plans = std::make_shared<std::vector<InnerPlan>>();
        std::vector<Future<Version>> resolves;
        for (const Extent& block :
             meta::UpdateNodeSet(range, op->ticket.new_size, psize)) {
          if (meta::IsLeafBlock(block, psize)) continue;
          InnerPlan plan;
          plan.block = block;
          Extent left = meta::LeftChildBlock(block);
          Extent right = meta::RightChildBlock(block);
          if (left.Intersects(range)) {
            plan.left = vw;
          } else {
            plan.left_resolve = static_cast<int>(resolves.size());
            resolves.push_back(ResolveBorderAsync(op, left));
          }
          if (right.Intersects(range)) {
            plan.right = vw;
          } else {
            plan.right_resolve = static_cast<int>(resolves.size());
            resolves.push_back(ResolveBorderAsync(op, right));
          }
          plans->push_back(plan);
        }
        return WhenAll(std::move(resolves))
            .Then([this, op, plans](
                      Result<std::vector<Result<Version>>> rs) -> Future<Unit> {
              if (!rs.ok()) return MakeReadyFuture(rs.status());
              Status first = FirstError(*rs);
              if (!first.ok()) return MakeReadyFuture(std::move(first));
              for (const auto& plan : *plans) {
                Version vl = plan.left_resolve >= 0
                                 ? *(*rs)[plan.left_resolve]
                                 : plan.left;
                Version vr = plan.right_resolve >= 0
                                 ? *(*rs)[plan.right_resolve]
                                 : plan.right;
                op->AddNode(plan.block, MetaNode::Inner(vl, vr));
              }
              std::vector<std::pair<NodeKey, MetaNode>> nodes;
              {
                std::lock_guard<std::mutex> lock(op->mu);
                nodes = std::move(op->nodes);
              }
              size_t count = nodes.size();
              return meta_.WriteNodesAsync(std::move(nodes))
                  .Then([this, op, count](Result<Unit> wr) -> Status {
                    if (!wr.ok()) return wr.status();
                    std::lock_guard<std::mutex> lock(stats_mu_);
                    stats_.meta_nodes_written += count;
                    return Status::OK();
                  });
            });
      });
}

Future<Version> BlobClient::RunUpdateAsync(std::shared_ptr<UpdateOp> op) {
  Future<Unit> built =
      BuildAndWriteMetaAsync(op).Then([this, op](Result<Unit> r)
                                          -> Future<Unit> {
        if (r.ok()) return MakeReadyFuture(Status::OK());
        // The update cannot be completed: abort it so the version chain
        // keeps advancing, then surface the original failure.
        Status cause = r.status();
        return AbortAsync(op->id, op->ticket.version)
            .Then([cause](Result<Unit>) -> Status { return cause; });
      });
  return built.Then([this, op](Result<Unit> r) -> Future<Version> {
    if (!r.ok()) return MakeReadyFuture<Version>(r.status());
    return vm_.NotifySuccessAsync(op->id, op->ticket.version)
        .Then([this, op](Result<Unit> n) -> Result<Version> {
          if (!n.ok()) return n.status();
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            if (op->is_append) {
              stats_.appends++;
            } else {
              stats_.writes++;
            }
            stats_.bytes_written += op->data.size();
          }
          return op->ticket.version;
        });
  });
}

Future<Version> BlobClient::WriteAsync(BlobId id, Slice data,
                                       uint64_t offset) {
  if (data.empty())
    return MakeReadyFuture<Version>(Status::InvalidArgument("empty write"));
  auto op = std::make_shared<UpdateOp>();
  op->c = this;
  op->id = id;
  op->data = data;
  op->offset = offset;
  op->is_append = false;
  Future<Version> f = op->promise.GetFuture();

  DescriptorAsync(id).OnReady(nullptr, [this, op](Result<BlobDescriptor> d) {
    if (!d.ok()) {
      op->promise.Set(d.status());
      return;
    }
    op->desc = std::move(d).ValueUnsafe();
    // Paper Algorithm 2: store the new pages first, fully in parallel,
    // with no synchronization; only then register the update.
    op->batch = std::make_shared<PageWriteBatch>(
        SplitIntoPages(op->data, op->offset, op->desc.psize));
    StorePagesAsync(op->batch).OnReady(nullptr, [this, op](Result<Unit> s) {
      if (!s.ok()) {
        Status cause = s.status();
        DeletePagesAsync(op->batch).OnReady(
            nullptr, [op, cause](Result<Unit>) { op->promise.Set(cause); });
        return;
      }
      vm_.AssignVersionAsync(op->id, /*is_append=*/false, op->offset,
                             op->data.size())
          .OnReady(nullptr, [this, op](Result<AssignTicket> t) {
            if (!t.ok()) {
              Status cause = t.status();
              DeletePagesAsync(op->batch)
                  .OnReady(nullptr, [op, cause](Result<Unit>) {
                    op->promise.Set(cause);
                  });
              return;
            }
            op->ticket = std::move(t).ValueUnsafe();
            RunUpdateAsync(op).OnReady(nullptr, [op](Result<Version> v) {
              op->promise.Set(std::move(v));
            });
          });
    });
  });
  return f;
}

Future<Version> BlobClient::AppendAsync(BlobId id, Slice data) {
  if (data.empty())
    return MakeReadyFuture<Version>(Status::InvalidArgument("empty append"));
  auto op = std::make_shared<UpdateOp>();
  op->c = this;
  op->id = id;
  op->data = data;
  op->is_append = true;
  Future<Version> f = op->promise.GetFuture();

  DescriptorAsync(id).OnReady(nullptr, [this, op](Result<BlobDescriptor> d) {
    if (!d.ok()) {
      op->promise.Set(d.status());
      return;
    }
    op->desc = std::move(d).ValueUnsafe();
    // Appends learn their offset from the version manager (paper section
    // 3.3); with unaligned blob sizes the page split depends on it, so the
    // version is assigned before the pages are stored (DESIGN.md 3.3).
    vm_.AssignVersionAsync(op->id, /*is_append=*/true, 0, op->data.size())
        .OnReady(nullptr, [this, op](Result<AssignTicket> t) {
          if (!t.ok()) {
            op->promise.Set(t.status());
            return;
          }
          op->ticket = std::move(t).ValueUnsafe();
          op->offset = op->ticket.offset;
          op->batch = std::make_shared<PageWriteBatch>(
              SplitIntoPages(op->data, op->offset, op->desc.psize));
          StorePagesAsync(op->batch)
              .OnReady(nullptr, [this, op](Result<Unit> s) {
                if (!s.ok()) {
                  Status cause = s.status();
                  AbortAsync(op->id, op->ticket.version)
                      .OnReady(nullptr, [op, cause](Result<Unit>) {
                        op->promise.Set(cause);
                      });
                  return;
                }
                RunUpdateAsync(op).OnReady(nullptr, [op](Result<Version> v) {
                  op->promise.Set(std::move(v));
                });
              });
        });
  });
  return f;
}

Future<std::vector<BlobClient::FetchPiece>> BlobClient::ResolveLeafPiecesAsync(
    const BranchAncestry& ancestry, const Extent& block, const MetaNode& leaf,
    std::vector<Interval> needed) {
  struct WalkOp {
    BlobClient* c;
    BranchAncestry ancestry;
    Extent block;
    MetaNode cur;
    std::vector<Interval> needed;
    std::vector<FetchPiece> out;
    Promise<std::vector<FetchPiece>> promise;

    void Step(const std::shared_ptr<WalkOp>& self) {
      // Overlay this leaf's fragments onto whatever is still uncovered.
      for (const PageFragment& frag : cur.fragments) {
        uint64_t fb = frag.page_off;
        uint64_t fe = frag.page_off + frag.len;
        std::vector<Interval> rest;
        rest.reserve(needed.size() + 1);
        for (const Interval& iv : needed) {
          uint64_t ob = std::max(iv.begin, fb);
          uint64_t oe = std::min(iv.end, fe);
          if (ob >= oe) {
            rest.push_back(iv);
            continue;
          }
          // v3 fragments carry no providers: the fetch stage resolves the
          // replica set through the location index. legacy_providers (only
          // populated by pre-v3 leaves) rides along as the seed/fallback.
          out.push_back(FetchPiece{frag.pid, frag.legacy_providers,
                                   frag.data_off + (ob - fb), oe - ob, ob});
          if (iv.begin < ob) rest.push_back(Interval{iv.begin, ob});
          if (oe < iv.end) rest.push_back(Interval{oe, iv.end});
        }
        needed = std::move(rest);
        if (needed.empty()) {
          promise.Set(std::move(out));
          return;
        }
      }
      if (cur.prev_version == kNoVersion) {
        promise.Set(Status::Corruption(
            "page bytes not covered by fragment chain at " +
            block.ToString()));
        return;
      }
      c->meta_
          .GetNodeAsync(NodeKey{ancestry.Resolve(cur.prev_version),
                                cur.prev_version, block})
          .OnReady(nullptr, [self](Result<MetaNode> next) {
            if (!next.ok()) {
              self->promise.Set(next.status());
              return;
            }
            self->cur = std::move(next).ValueUnsafe();
            self->Step(self);
          });
    }
  };
  auto op = std::make_shared<WalkOp>();
  op->c = this;
  op->ancestry = ancestry;
  op->block = block;
  op->cur = leaf;
  op->needed = std::move(needed);
  auto f = op->promise.GetFuture();
  op->Step(op);
  return f;
}

void BlobClient::RepairReplicasAsync(FetchPiece piece, size_t good) {
  // Detached best-effort chain: fetch the complete page object from the
  // replica that served the read, then re-store it on each replica that
  // failed. The guard keeps the client alive bookkeeping honest — the
  // destructor drains detached chains so they never touch a dead client.
  {
    std::lock_guard<std::mutex> lock(detached_mu_);
    // Best-effort means droppable: a degraded bulk read would otherwise
    // spawn one full-page repair per failed-over piece, ballooning memory
    // and competing with the foreground read. Pieces skipped here stay
    // repair candidates for the next read that touches them.
    if (detached_ops_ >= kMaxDetachedRepairs) return;
    detached_ops_++;
  }
  auto guard = std::shared_ptr<void>(
      nullptr, [this](void*) { EndDetachedOp(); });
  auto shared = std::make_shared<FetchPiece>(std::move(piece));
  pm_.ResolveAddressAsync(shared->providers[good])
      .Then([this, shared, guard](Result<std::string> addr)
                -> Future<std::string> {
        if (!addr.ok()) return MakeReadyFuture<std::string>(addr.status());
        // len == 0 reads through the end: the whole stored object.
        return providers_.ReadPageAsync(*addr, shared->pid, 0, 0);
      })
      .OnReady(nullptr, [this, shared, good, guard](Result<std::string> obj) {
        if (!obj.ok()) return;
        auto data = std::make_shared<std::string>(std::move(obj).ValueUnsafe());
        for (size_t j = 0; j < good; j++) {
          pm_.ResolveAddressAsync(shared->providers[j])
              .Then([this, shared, data, guard](
                        Result<std::string> addr) -> Future<Unit> {
                if (!addr.ok()) return MakeReadyFuture(addr.status());
                return providers_.WritePageAsync(*addr, shared->pid,
                                                 Slice(*data));
              })
              .OnReady(nullptr, [this, guard](Result<Unit> stored) {
                if (!stored.ok()) return;  // replica still down: stay degraded
                std::lock_guard<std::mutex> lock(stats_mu_);
                stats_.read_repairs++;
              });
        }
      });
}

void BlobClient::ReportSeededLocation(const PageId& pid,
                                      const locator::LocationEntry& entry) {
  // Detached best-effort: the DHT entry is already authoritative; this only
  // feeds the rebuilder's view. Registered like straggler puts so the
  // destructor drains it.
  BeginDetachedOp();
  pmanager::ReportLocationsRequest req;
  req.added.push_back(
      pmanager::PageLocationInfo{pid, entry.epoch, entry.providers});
  pm_.ReportLocationsAsync(std::move(req))
      .OnReady(nullptr, [this](Result<Unit>) { EndDetachedOp(); });
}

Future<Unit> BlobClient::FetchPiecesIntoAsync(std::vector<FetchPiece> pieces,
                                              std::vector<uint64_t> bases,
                                              uint64_t range_offset,
                                              char* dst) {
  // Per-piece chain: resolve the page's current replica set through the
  // location index (seeding the entry from pre-v3 metadata if absent), then
  // try replicas in order; any error (dead endpoint, missing object, short
  // read) advances to the next replica, and a success after a miss triggers
  // detached read repair. Exhausting the whole set once drops the cached
  // entry and re-resolves — the rebuilder may have moved the page while
  // this read was failing over.
  struct PieceOp {
    BlobClient* c = nullptr;
    FetchPiece piece;  // piece.providers = legacy seed (empty for v3 pages)
    std::vector<ProviderId> replicas;  // resolved set being tried
    char* out = nullptr;  // absolute destination for this piece's bytes
    size_t attempt = 0;
    bool refreshed = false;
    Status last_error;
    Promise<Unit> promise;

    void Start(const std::shared_ptr<PieceOp>& self) {
      c->locator_.ResolveAsync(piece.pid).OnReady(
          nullptr, [self](Result<locator::LocationEntry> e) {
            if (e.ok()) {
              self->replicas = std::move(e->providers);
              self->Step(self);
              return;
            }
            if (e.status().IsNotFound() && !self->piece.providers.empty()) {
              self->SeedFromLegacy(self);
              return;
            }
            if (!self->piece.providers.empty()) {
              // Location store unreachable: the legacy replica set is stale
              // at worst — still the best shot at serving the read.
              self->replicas = self->piece.providers;
              self->Step(self);
              return;
            }
            self->promise.Set(e.status());
          });
    }

    // Pre-v3 page: install a location entry from the replica set embedded
    // in the old metadata, so rebuilds cover legacy pages too. A concurrent
    // seeder winning the CAS is fine — Seed returns the stored entry.
    void SeedFromLegacy(const std::shared_ptr<PieceOp>& self) {
      c->locator_.SeedAsync(piece.pid, piece.providers)
          .OnReady(nullptr, [self](Result<locator::LocationEntry> seeded) {
            if (seeded.ok()) {
              {
                std::lock_guard<std::mutex> lock(self->c->stats_mu_);
                self->c->stats_.location_seeds++;
              }
              self->c->ReportSeededLocation(self->piece.pid, *seeded);
              self->replicas = std::move(seeded->providers);
            } else {
              self->replicas = self->piece.providers;
            }
            self->Step(self);
          });
    }

    void Step(const std::shared_ptr<PieceOp>& self) {
      if (attempt >= replicas.size()) {
        if (!refreshed) {
          Refresh(self);
          return;
        }
        promise.Set(last_error.ok()
                        ? Status::Unavailable("no replicas for page " +
                                              piece.pid.ToString())
                        : last_error);
        return;
      }
      c->pm_.ResolveAddressAsync(replicas[attempt])
          .Then([self](Result<std::string> addr) -> Future<std::string> {
            if (!addr.ok()) return MakeReadyFuture<std::string>(addr.status());
            return self->c->providers_.ReadPageAsync(
                *addr, self->piece.pid, self->piece.src_off, self->piece.len);
          })
          .OnReady(nullptr, [self](Result<std::string> chunk) {
            bool ok = chunk.ok() && chunk->size() == self->piece.len;
            if (!ok) {
              self->last_error = chunk.ok()
                                     ? Status::Corruption("short page read")
                                     : chunk.status();
              // Failover depth is bounded by the replica count, so the
              // inline recursion here stays shallow.
              self->attempt++;
              self->Step(self);
              return;
            }
            std::memcpy(self->out, chunk->data(), chunk->size());
            if (self->attempt > 0) {
              {
                std::lock_guard<std::mutex> lock(self->c->stats_mu_);
                self->c->stats_.failover_reads++;
              }
              FetchPiece repair = self->piece;
              repair.providers = self->replicas;
              self->c->RepairReplicasAsync(std::move(repair), self->attempt);
            }
            self->promise.Set(Unit{});
          });
    }

    // Every replica failed: drop the cached entry and re-resolve once. A
    // changed set means the rebuilder relocated the page mid-read — retry
    // from the top against the fresh replicas.
    void Refresh(const std::shared_ptr<PieceOp>& self) {
      refreshed = true;
      c->locator_.Invalidate(piece.pid);
      c->locator_.ResolveAsync(piece.pid).OnReady(
          nullptr, [self](Result<locator::LocationEntry> e) {
            if (e.ok() && e->providers != self->replicas) {
              {
                std::lock_guard<std::mutex> lock(self->c->stats_mu_);
                self->c->stats_.location_refreshes++;
              }
              self->replicas = std::move(e->providers);
              self->attempt = 0;
              self->Step(self);
              return;
            }
            self->promise.Set(self->last_error.ok()
                                  ? Status::Unavailable(
                                        "no replicas for page " +
                                        self->piece.pid.ToString())
                                  : self->last_error);
          });
    }
  };

  std::vector<std::function<Future<Unit>()>> tasks;
  tasks.reserve(pieces.size());
  for (size_t i = 0; i < pieces.size(); i++) {
    auto op = std::make_shared<PieceOp>();
    op->c = this;
    op->piece = std::move(pieces[i]);
    // Pieces cover disjoint output ranges, so the copies are safe to run
    // concurrently on completion threads.
    op->out = dst + (bases[i] + op->piece.page_local_off - range_offset);
    tasks.push_back([op] {
      Future<Unit> f = op->promise.GetFuture();
      op->Start(op);
      return f;
    });
  }
  return RunWindowed(std::move(tasks), options_.max_inflight_pages);
}

Future<std::string> BlobClient::ReadAsync(BlobId id, Version version,
                                          uint64_t offset, uint64_t size) {
  auto op = std::make_shared<ReadOp>();
  op->c = this;
  op->id = id;
  op->version = version;
  op->offset = offset;
  op->size = size;
  Future<std::string> f = op->promise.GetFuture();

  DescriptorAsync(id).OnReady(nullptr, [this, op](Result<BlobDescriptor> d) {
    if (!d.ok()) {
      op->promise.Set(d.status());
      return;
    }
    op->desc = std::move(d).ValueUnsafe();
    op->ancestry = op->desc.Ancestry();
    // GET_SIZE doubles as the publication check (paper Algorithm 1 line 1).
    vm_.GetSizeAsync(op->id, op->version)
        .OnReady(nullptr, [this, op](Result<uint64_t> blob_size) {
          if (!blob_size.ok()) {
            op->promise.Set(blob_size.status());
            return;
          }
          if (op->offset + op->size > *blob_size) {
            op->promise.Set(Status::OutOfRange(
                StrFormat("read [%llu,+%llu) beyond snapshot size %llu",
                          static_cast<unsigned long long>(op->offset),
                          static_cast<unsigned long long>(op->size),
                          static_cast<unsigned long long>(*blob_size))));
            return;
          }
          op->out.resize(op->size);
          if (op->size == 0) {
            op->promise.Set(std::move(op->out));
            return;
          }
          const Extent range{op->offset, op->size};
          meta_
              .ReadMetaAsync(op->ancestry, op->version, *blob_size,
                             op->desc.psize, range)
              .OnReady(nullptr, [this, op,
                                 range](Result<std::vector<meta::LeafRef>>
                                            leaves) {
                if (!leaves.ok()) {
                  op->promise.Set(leaves.status());
                  return;
                }
                op->leaves = std::move(leaves).ValueUnsafe();
                // Resolve fragment chains per leaf (parallel across
                // leaves), then fetch all pieces in one parallel wave.
                std::vector<Future<std::vector<FetchPiece>>> per_leaf;
                per_leaf.reserve(op->leaves.size());
                for (const meta::LeafRef& leaf : op->leaves) {
                  Extent needed_abs = leaf.block.Clip(range);
                  Interval needed{needed_abs.offset - leaf.block.offset,
                                  needed_abs.end() - leaf.block.offset};
                  per_leaf.push_back(ResolveLeafPiecesAsync(
                      op->ancestry, leaf.block, leaf.node, {needed}));
                }
                WhenAll(std::move(per_leaf))
                    .OnReady(nullptr, [this, op](
                                          Result<std::vector<
                                              Result<std::vector<FetchPiece>>>>
                                              resolved) {
                      if (!resolved.ok()) {
                        op->promise.Set(resolved.status());
                        return;
                      }
                      Status first = FirstError(*resolved);
                      if (!first.ok()) {
                        op->promise.Set(std::move(first));
                        return;
                      }
                      std::vector<FetchPiece> pieces;
                      std::vector<uint64_t> bases;
                      for (size_t i = 0; i < resolved->size(); i++) {
                        for (const FetchPiece& p : *(*resolved)[i]) {
                          pieces.push_back(p);
                          bases.push_back(op->leaves[i].block.offset);
                        }
                      }
                      FetchPiecesIntoAsync(std::move(pieces), std::move(bases),
                                           op->offset, op->out.data())
                          .OnReady(nullptr, [this, op](Result<Unit> fetched) {
                            if (!fetched.ok()) {
                              op->promise.Set(fetched.status());
                              return;
                            }
                            {
                              std::lock_guard<std::mutex> lock(stats_mu_);
                              stats_.reads++;
                              stats_.bytes_read += op->size;
                            }
                            op->promise.Set(std::move(op->out));
                          });
                    });
              });
        });
  });
  return f;
}

Future<RecentVersion> BlobClient::GetRecentAsync(BlobId id) {
  return vm_.GetRecentAsync(id);
}

Future<uint64_t> BlobClient::GetSizeAsync(BlobId id, Version version) {
  return vm_.GetSizeAsync(id, version);
}

Future<Unit> BlobClient::SyncAsync(BlobId id, Version version,
                                   uint64_t timeout_us) {
  auto op = std::make_shared<SyncOp>();
  op->c = this;
  op->id = id;
  op->version = version;
  op->timeout_us = timeout_us;
  Future<Unit> f = op->promise.GetFuture();
  if (options_.blocking_sync) {
    op->Subscribe(op);
  } else {
    op->Step(op);
  }
  return f;
}

Future<Unit> BlobClient::AbortAsync(BlobId id, Version version) {
  return DescriptorAsync(id).Then(
      [this, id, version](Result<BlobDescriptor> desc) -> Future<Unit> {
        if (!desc.ok()) return MakeReadyFuture(desc.status());
        BlobDescriptor d = std::move(desc).ValueUnsafe();
        return vm_.AbortUpdateAsync(id, version)
            .Then([this, id, version,
                   d](Result<vmanager::AbortOutcome> outcome) -> Future<Unit> {
              if (!outcome.ok()) return MakeReadyFuture(outcome.status());
              if (outcome->retracted) return MakeReadyFuture(Status::OK());
              // Repair: replay the aborted update as zeros (DESIGN.md 3.3)
              // so that every node key later updates may have
              // border-referenced exists.
              auto op = std::make_shared<UpdateOp>();
              op->c = this;
              op->id = id;
              op->desc = d;
              op->ticket = outcome->repair;
              op->zeros.assign(op->ticket.size, '\0');
              op->data = Slice(op->zeros);
              op->offset = op->ticket.offset;
              op->batch = std::make_shared<PageWriteBatch>(
                  SplitIntoPages(op->data, op->offset, d.psize));
              return StorePagesAsync(op->batch)
                  .Then([this, op](Result<Unit> stored) -> Future<Unit> {
                    if (!stored.ok())
                      return MakeReadyFuture(stored.status());
                    return BuildAndWriteMetaAsync(op).Then(
                        [this, op](Result<Unit> built) -> Future<Unit> {
                          if (!built.ok())
                            return MakeReadyFuture(built.status());
                          return vm_
                              .NotifySuccessAsync(op->id, op->ticket.version)
                              .Then([this, op](Result<Unit> n) -> Status {
                                if (!n.ok()) return n.status();
                                std::lock_guard<std::mutex> lock(stats_mu_);
                                stats_.repairs++;
                                return Status::OK();
                              });
                        });
                  });
            });
      });
}

// --- Synchronous facade: thin waits over the async chains. Wait parks the
// caller on an executor-provided event, so the same code blocks correctly
// on real threads and on simnet tasks. ---

Result<BlobId> BlobClient::Create(uint64_t psize) {
  return CreateAsync(psize).Wait(executor_);
}

Result<BlobDescriptor> BlobClient::Open(BlobId id) {
  return OpenAsync(id).Wait(executor_);
}

Result<Version> BlobClient::Write(BlobId id, Slice data, uint64_t offset) {
  return WriteAsync(id, data, offset).Wait(executor_);
}

Result<Version> BlobClient::Append(BlobId id, Slice data) {
  return AppendAsync(id, data).Wait(executor_);
}

Status BlobClient::Read(BlobId id, Version version, uint64_t offset,
                        uint64_t size, std::string* out) {
  auto r = ReadAsync(id, version, offset, size).Wait(executor_);
  if (!r.ok()) return r.status();
  *out = std::move(r).ValueUnsafe();
  return Status::OK();
}

Result<RecentVersion> BlobClient::GetRecent(BlobId id) {
  return GetRecentAsync(id).Wait(executor_);
}

Result<uint64_t> BlobClient::GetSize(BlobId id, Version version) {
  return GetSizeAsync(id, version).Wait(executor_);
}

Status BlobClient::Sync(BlobId id, Version version, uint64_t timeout_us) {
  return SyncAsync(id, version, timeout_us).Wait(executor_).status();
}

Status BlobClient::Abort(BlobId id, Version version) {
  return AbortAsync(id, version).Wait(executor_).status();
}

Result<BlobId> BlobClient::Branch(BlobId id, Version version) {
  auto desc = vm_.Branch(id, version);
  if (!desc.ok()) return desc.status();
  std::lock_guard<std::mutex> lock(mu_);
  BlobId bid = desc->id;
  descriptors_[bid] = std::move(desc).ValueUnsafe();
  return bid;
}

ClientStats BlobClient::GetStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace blobseer::client
