// Convenience handle: a blob id bound to a client.
#ifndef BLOBSEER_CLIENT_BLOB_HANDLE_H_
#define BLOBSEER_CLIENT_BLOB_HANDLE_H_

#include <string>

#include "client/blob_client.h"

namespace blobseer::client {

/// Lightweight, copyable view of one blob through one client. All calls
/// forward to BlobClient; see its documentation for semantics (async
/// forwards share the Slice-borrow rule: keep payloads alive until the
/// returned future resolves).
class Blob {
 public:
  Blob() = default;
  Blob(BlobClient* client, BlobId id) : client_(client), id_(id) {}

  bool valid() const { return client_ != nullptr && id_ != kInvalidBlobId; }
  BlobId id() const { return id_; }
  BlobClient* client() const { return client_; }

  Result<Version> Write(Slice data, uint64_t offset) {
    return client_->Write(id_, data, offset);
  }
  Result<Version> Append(Slice data) { return client_->Append(id_, data); }
  Status Read(Version version, uint64_t offset, uint64_t size,
              std::string* out) {
    return client_->Read(id_, version, offset, size, out);
  }
  /// Reads [offset, offset+size) from the most recent published snapshot.
  Status ReadRecent(uint64_t offset, uint64_t size, std::string* out);
  Result<RecentVersion> GetRecent() { return client_->GetRecent(id_); }
  Result<uint64_t> GetSize(Version version) {
    return client_->GetSize(id_, version);
  }
  Status Sync(Version version,
              uint64_t timeout_us = BlobClient::kNoTimeout) {
    return client_->Sync(id_, version, timeout_us);
  }
  Result<Blob> Branch(Version version);

  /// Async forwards.
  Future<Version> WriteAsync(Slice data, uint64_t offset) {
    return client_->WriteAsync(id_, data, offset);
  }
  Future<Version> AppendAsync(Slice data) {
    return client_->AppendAsync(id_, data);
  }
  Future<std::string> ReadAsync(Version version, uint64_t offset,
                                uint64_t size) {
    return client_->ReadAsync(id_, version, offset, size);
  }
  Future<RecentVersion> GetRecentAsync() {
    return client_->GetRecentAsync(id_);
  }
  Future<uint64_t> GetSizeAsync(Version version) {
    return client_->GetSizeAsync(id_, version);
  }
  Future<Unit> SyncAsync(Version version,
                         uint64_t timeout_us = BlobClient::kNoTimeout) {
    return client_->SyncAsync(id_, version, timeout_us);
  }
  /// Appends and resolves once the new version is published.
  Future<Version> AppendSyncAsync(Slice data);

  /// Appends and waits for publication (read-your-writes convenience).
  Result<Version> AppendSync(Slice data);
  /// Writes and waits for publication.
  Result<Version> WriteSync(Slice data, uint64_t offset);

 private:
  BlobClient* client_ = nullptr;
  BlobId id_ = kInvalidBlobId;
};

}  // namespace blobseer::client

#endif  // BLOBSEER_CLIENT_BLOB_HANDLE_H_
