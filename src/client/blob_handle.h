// Convenience handle: a blob id bound to a client.
#ifndef BLOBSEER_CLIENT_BLOB_HANDLE_H_
#define BLOBSEER_CLIENT_BLOB_HANDLE_H_

#include <string>

#include "client/blob_client.h"

namespace blobseer::client {

/// Lightweight, copyable view of one blob through one client. All calls
/// forward to BlobClient; see its documentation for semantics.
class Blob {
 public:
  Blob() = default;
  Blob(BlobClient* client, BlobId id) : client_(client), id_(id) {}

  bool valid() const { return client_ != nullptr && id_ != kInvalidBlobId; }
  BlobId id() const { return id_; }
  BlobClient* client() const { return client_; }

  Result<Version> Write(Slice data, uint64_t offset) {
    return client_->Write(id_, data, offset);
  }
  Result<Version> Append(Slice data) { return client_->Append(id_, data); }
  Status Read(Version version, uint64_t offset, uint64_t size,
              std::string* out) {
    return client_->Read(id_, version, offset, size, out);
  }
  /// Reads [offset, offset+size) from the most recent published snapshot.
  Status ReadRecent(uint64_t offset, uint64_t size, std::string* out);
  Result<Version> GetRecent(uint64_t* size = nullptr) {
    return client_->GetRecent(id_, size);
  }
  Result<uint64_t> GetSize(Version version) {
    return client_->GetSize(id_, version);
  }
  Status Sync(Version version,
              uint64_t timeout_us = BlobClient::kNoTimeout) {
    return client_->Sync(id_, version, timeout_us);
  }
  Result<Blob> Branch(Version version);

  /// Appends and waits for publication (read-your-writes convenience).
  Result<Version> AppendSync(Slice data);
  /// Writes and waits for publication.
  Result<Version> WriteSync(Slice data, uint64_t offset);

 private:
  BlobClient* client_ = nullptr;
  BlobId id_ = kInvalidBlobId;
};

}  // namespace blobseer::client

#endif  // BLOBSEER_CLIENT_BLOB_HANDLE_H_
