#include "client/blob_handle.h"

namespace blobseer::client {

Status Blob::ReadRecent(uint64_t offset, uint64_t size, std::string* out) {
  auto recent = client_->GetRecent(id_);
  if (!recent.ok()) return recent.status();
  return client_->Read(id_, recent->version, offset, size, out);
}

Result<Blob> Blob::Branch(Version version) {
  auto bid = client_->Branch(id_, version);
  if (!bid.ok()) return bid.status();
  return Blob(client_, *bid);
}

Future<Version> Blob::AppendSyncAsync(Slice data) {
  BlobClient* client = client_;
  BlobId id = id_;
  return client->AppendAsync(id, data).Then(
      [client, id](Result<Version> v) -> Future<Version> {
        if (!v.ok()) return MakeReadyFuture<Version>(v.status());
        Version version = *v;
        return client->SyncAsync(id, version)
            .Then([version](Result<Unit> s) -> Result<Version> {
              if (!s.ok()) return s.status();
              return version;
            });
      });
}

Result<Version> Blob::AppendSync(Slice data) {
  auto v = client_->Append(id_, data);
  if (!v.ok()) return v;
  BS_RETURN_NOT_OK(client_->Sync(id_, *v));
  return v;
}

Result<Version> Blob::WriteSync(Slice data, uint64_t offset) {
  auto v = client_->Write(id_, data, offset);
  if (!v.ok()) return v;
  BS_RETURN_NOT_OK(client_->Sync(id_, *v));
  return v;
}

}  // namespace blobseer::client
