// BlobSeer client library: implements the paper's access primitives
// (section 2.1) — CREATE, READ, WRITE, APPEND, GET_RECENT, GET_SIZE, SYNC,
// BRANCH — over the version manager, provider manager, data providers and
// the DHT-backed metadata store.
//
// The async API (*Async methods returning Future<T>) is the real
// implementation: every operation is a continuation chain whose RPC
// fan-outs (page stores, metadata node writes, page fetches) pipeline over
// the transport without parking a client thread per operation, so a single
// client can keep dozens of updates in flight. The synchronous methods are
// thin waits over the same chains. See docs/client_api.md for the
// threading model and argument-lifetime rules.
#ifndef BLOBSEER_CLIENT_BLOB_CLIENT_H_
#define BLOBSEER_CLIENT_BLOB_CLIENT_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/blob_descriptor.h"
#include "common/clock.h"
#include "common/executor.h"
#include "common/future.h"
#include "common/result.h"
#include "dht/client.h"
#include "lifecycle/dedup.h"
#include "locator/location.h"
#include "meta/meta_client.h"
#include "pmanager/client.h"
#include "provider/client.h"
#include "vmanager/client.h"

namespace blobseer::client {

struct ClientOptions {
  /// Worker threads for the client's internally-owned executor (ignored
  /// when an external executor is supplied).
  size_t io_threads = 16;
  /// Maximum parallel page transfers per operation (sync helpers; the
  /// async pipeline is bounded by channels_per_endpoint pipelining).
  size_t data_fanout = 8;
  /// Distinct providers storing each page (1 = no replication). WRITE fans
  /// every page out to all replicas; READ tries replicas in order with
  /// failover and best-effort read repair.
  uint32_t replication = 1;
  /// Replica acks required before a page store (and hence the update)
  /// proceeds: `w` of `r`. 0 (the default) or any value >= replication
  /// means all replicas. With w < r a page write survives up to r - w
  /// failed replicas; the straggler puts complete detached (mirroring the
  /// capped read-repair pattern) and a replica that missed its put is
  /// healed by failover + read repair on the first degraded read. The
  /// store fails — after every replica settled, so failure cleanup never
  /// races an in-flight put — only when fewer than w replicas accepted.
  uint32_t write_quorum = 0;
  /// Bounds the pages a single operation keeps in flight (and hence the
  /// page buffers a replicated write materializes at once); 0 = unlimited,
  /// i.e. the transport's channel pipelining is the only bound.
  size_t max_inflight_pages = 0;
  /// Maximum parallel metadata (DHT) operations per batch/level.
  size_t meta_fanout = 16;
  /// Leaf fragment-chain length that triggers page compaction on the next
  /// write to the page (unaligned-write bookkeeping; DESIGN.md 3.2).
  uint32_t max_chain = 16;
  /// If true (default), SYNC subscribes: one AwaitPublished RPC carries the
  /// full timeout and the server pushes the response at publish time.
  /// Otherwise SYNC polls with non-blocking probes every sync_poll_us.
  bool blocking_sync = true;
  /// Poll interval for the non-subscribing SYNC mode; clamped to a minimum
  /// of 50us (0 would busy-spin probes through the executor).
  uint64_t sync_poll_us = 1000;
  /// Metadata node cache (immutable nodes; safe to cache).
  bool cache_metadata = true;
  size_t cache_capacity = 1 << 16;
  /// Channels per endpoint for parallel RPCs.
  size_t channels_per_endpoint = 8;
  /// Content-hash page dedup (docs/lifecycle.md): pages are addressed by a
  /// 128-bit content hash in the DHT's 'H' namespace, and a write whose
  /// page body already exists adopts the stored page (bumping its location
  /// entry's refcount) instead of storing a duplicate. The hash is fast,
  /// not cryptographic, so this is opt-in for trusted workloads.
  bool dedup = false;
  dht::DhtClientOptions dht;
};

struct ClientStats {
  uint64_t writes = 0;
  uint64_t appends = 0;
  uint64_t reads = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t pages_stored = 0;
  uint64_t meta_nodes_written = 0;
  uint64_t compactions = 0;
  uint64_t repairs = 0;
  /// Reads served by a non-primary replica after a failed attempt.
  uint64_t failover_reads = 0;
  /// Page objects re-stored on a replica that failed a read (read repair).
  uint64_t read_repairs = 0;
  /// Pages acked at the write quorum although at least one replica put
  /// failed (w < r absorbed a replica failure).
  uint64_t degraded_writes = 0;
  /// Location entries installed for freshly written pages.
  uint64_t locations_published = 0;
  /// Location entries created from pre-v3 metadata during reads.
  uint64_t location_seeds = 0;
  /// Reads that re-resolved a page's location after exhausting the cached
  /// replica set (the page had been moved by the rebuilder).
  uint64_t location_refreshes = 0;
  /// Pages adopted through the content-hash index instead of stored.
  uint64_t dedup_hits = 0;
};

/// One BlobSeer client process. Thread-safe: concurrent operations on the
/// same client are allowed and proceed in parallel; async operations from a
/// single caller thread additionally overlap with each other.
class BlobClient {
 public:
  static constexpr uint64_t kNoTimeout = UINT64_MAX;

  /// `dht_nodes` must list the metadata-provider endpoints in the same
  /// order on every client (placement is positional).
  /// `clock`/`executor` default to the real clock and an owned thread pool;
  /// the simulator injects virtual-time equivalents.
  BlobClient(rpc::Transport* transport, std::string vmanager_address,
             std::string pmanager_address, std::vector<std::string> dht_nodes,
             ClientOptions options = {}, Clock* clock = nullptr,
             Executor* executor = nullptr);
  ~BlobClient();

  BlobClient(const BlobClient&) = delete;
  BlobClient& operator=(const BlobClient&) = delete;

  // --- Asynchronous core. Futures resolve on the transport's completion
  // context (or on the caller when the transport completes inline); Slice
  // arguments are borrowed and must stay alive until the returned future
  // resolves. ---

  /// CREATE: new empty blob with the given page size (power of two).
  Future<BlobId> CreateAsync(uint64_t psize);

  /// Fetches (and caches) a blob's descriptor.
  Future<BlobDescriptor> OpenAsync(BlobId id);

  /// WRITE: replaces `data.size()` bytes at `offset`, producing a new
  /// snapshot. Resolves to the assigned version; the snapshot may not be
  /// published yet (use Sync/SyncAsync for read-your-writes). Fails with
  /// OutOfRange if `offset` exceeds the size of the preceding snapshot.
  Future<Version> WriteAsync(BlobId id, Slice data, uint64_t offset);

  /// APPEND: WRITE at the implicit offset = size of the preceding snapshot.
  Future<Version> AppendAsync(BlobId id, Slice data);

  /// READ from published snapshot `version`; resolves to the bytes read.
  /// Fails if the version is not yet published or the range exceeds the
  /// snapshot size.
  Future<std::string> ReadAsync(BlobId id, Version version, uint64_t offset,
                                uint64_t size);

  /// GET_RECENT: a recently published version (>= anything published
  /// before the call) and its size.
  Future<RecentVersion> GetRecentAsync(BlobId id);

  /// GET_SIZE of a published snapshot.
  Future<uint64_t> GetSizeAsync(BlobId id, Version version);

  /// SYNC: resolves once `version` is published (or TimedOut). The wait is
  /// a server-push subscription (blocking_sync) or re-polled through the
  /// executor, so no caller thread is parked either way.
  Future<Unit> SyncAsync(BlobId id, Version version,
                         uint64_t timeout_us = kNoTimeout);

  /// Abandons an assigned-but-unpublished update: retracts it when
  /// possible, otherwise repairs it as a zero-filled update and publishes
  /// it so the version chain keeps advancing (writer-crash recovery).
  Future<Unit> AbortAsync(BlobId id, Version version);

  // --- Synchronous facade: each call waits on the async chain above. ---

  Result<BlobId> Create(uint64_t psize);
  Result<BlobDescriptor> Open(BlobId id);
  Result<Version> Write(BlobId id, Slice data, uint64_t offset);
  Result<Version> Append(BlobId id, Slice data);
  Status Read(BlobId id, Version version, uint64_t offset, uint64_t size,
              std::string* out);
  Result<RecentVersion> GetRecent(BlobId id);
  Result<uint64_t> GetSize(BlobId id, Version version);
  Status Sync(BlobId id, Version version, uint64_t timeout_us = kNoTimeout);
  Status Abort(BlobId id, Version version);

  /// BRANCH: new blob sharing content with `id` up to `version`.
  Result<BlobId> Branch(BlobId id, Version version);

  ClientStats GetStats() const;

  vmanager::VersionManagerClient& vmanager() { return vm_; }
  pmanager::ProviderManagerClient& pmanager() { return pm_; }
  dht::DhtClient& dht() { return dht_; }
  locator::LocationIndex& locator() { return locator_; }
  meta::MetaClient& meta() { return meta_; }
  const ClientOptions& options() const { return options_; }
  Executor* executor() { return executor_; }

 private:
  struct PageWrite {
    uint64_t page_index = 0;
    meta::PageFragment frag;
    Slice bytes;  // fragment payload (borrowed from caller / owned buffer)
    /// Replica set the page was stored on. Lives outside the fragment: v3
    /// metadata persists only the PageId, the location index owns the
    /// PageId -> replica-set mapping.
    std::vector<ProviderId> replicas;
    /// Dedup bookkeeping (hash.valid() iff dedup hashed this page):
    /// `adopted` pages reference an existing page object via a refcount
    /// bump and were never stored; `claimed_h` marks that this op installed
    /// the 'H' mapping (so cleanup retracts it).
    lifecycle::ContentHash hash;
    bool adopted = false;
    bool claimed_h = false;
  };
  /// One update's page split plus the straggler barrier: with a write
  /// quorum below r, a page future can resolve while replica puts are
  /// still in flight. DeletePagesAsync waits for the barrier so a cleanup
  /// delete can never race a late put and resurrect a page object.
  struct PageWriteBatch {
    explicit PageWriteBatch(std::vector<PageWrite> p) : pages(std::move(p)) {}
    explicit PageWriteBatch(size_t n) : pages(n) {}
    std::vector<PageWrite> pages;

    std::mutex mu;
    size_t inflight_puts = 0;  // pages with replica puts not yet settled
    std::vector<Promise<Unit>> idle_waiters;
    void PutsStarted();
    void PutsSettled();
    /// Resolves once no replica put of this batch is in flight.
    Future<Unit> WhenPutsSettled();
  };
  struct FetchPiece {
    PageId pid;
    std::vector<ProviderId> providers;  // replica set, tried in order
    uint64_t src_off = 0;
    uint64_t len = 0;
    uint64_t page_local_off = 0;
  };
  struct Interval {
    uint64_t begin = 0;
    uint64_t end = 0;
  };

  /// Shared state of one WRITE/APPEND (or abort-repair) continuation
  /// chain; lives until its future resolves.
  struct UpdateOp;
  /// Shared state of one READ chain.
  struct ReadOp;
  /// Shared state of one SYNC await/poll loop.
  struct SyncOp;

  Future<BlobDescriptor> DescriptorAsync(BlobId id);
  PageId NewPageId();

  /// Splits an update's payload along the page grid.
  std::vector<PageWrite> SplitIntoPages(Slice data, uint64_t offset,
                                        uint64_t psize) const;

  /// Allocates a replica set per page and stores every page object on its
  /// replicas, windowed by max_inflight_pages; each page resolves at the
  /// configured write quorum.
  Future<Unit> StorePagesAsync(std::shared_ptr<PageWriteBatch> batch);
  /// One page's replica fan-out: resolve every replica address, write the
  /// page object to all of them, resolve at `write_quorum` acks (stragglers
  /// complete detached and are drained by the destructor / the batch
  /// barrier).
  Future<Unit> StorePageReplicasAsync(std::shared_ptr<PageWriteBatch> batch,
                                      size_t index);
  /// Dedup pre-stage for one page (ClientOptions::dedup): claim the 'H'
  /// mapping for the fresh PageId with a create-if-absent CAS, or adopt
  /// the existing page by CAS-bumping its location entry's refcount. A
  /// losing adoption (the holder was condemned by GC mid-race) falls back
  /// to a fresh store and best-effort repairs the mapping.
  Future<Unit> StorePageDedupAsync(std::shared_ptr<PageWriteBatch> batch,
                                   size_t index);
  /// Best-effort removal of the 'H' mapping iff it still targets `pid`.
  Future<Unit> UnlinkHashAsync(lifecycle::ContentHash hash, PageId pid);
  /// Best-effort physical deletion of one dead page (location entry plus
  /// every replica copy) once its refcount proved no one references it.
  Future<Unit> PurgePageAsync(PageId pid, std::vector<ProviderId> replicas);
  /// Publishes one location entry per stored page and reports the batch to
  /// the provider manager's location table. A page without a location entry
  /// is unreadable under v3 metadata, so a publish failure fails the update
  /// (the caller's cleanup then deletes the orphaned pages).
  Future<Unit> PublishLocationsAsync(std::shared_ptr<PageWriteBatch> batch);

  /// Detached best-effort report of a location entry just seeded from
  /// pre-v3 metadata, so the rebuilder learns about legacy pages too.
  void ReportSeededLocation(const PageId& pid,
                            const locator::LocationEntry& entry);

  /// Best-effort deletion of already-stored pages — every replica of every
  /// page plus its location entry (failure cleanup); waits for the batch's
  /// straggler barrier first; always resolves OK.
  Future<Unit> DeletePagesAsync(std::shared_ptr<PageWriteBatch> batch);

  /// Runs `tasks`, keeping at most `window` outstanding (0 = all at once).
  /// A failure stops the windowed refill (already-launched tasks drain
  /// first; the unbounded form launches everything up front); resolves
  /// with the first error.
  Future<Unit> RunWindowed(
      std::vector<std::function<Future<Unit>()>> tasks, size_t window);

  /// Detached best-effort read repair: copies the full page object from
  /// `providers[good]` back onto the replicas that failed the read
  /// (providers[0..good)).
  void RepairReplicasAsync(FetchPiece piece, size_t good);

  /// Detached chains (read repair, straggler replica puts) are not awaited
  /// by any caller; the destructor drains them so they never outlive the
  /// client. The drain parks on an executor-provided event, so it is
  /// sim-safe. At most kMaxDetachedRepairs *repair* chains run at once —
  /// beyond that, repairs are dropped (they re-trigger on the next
  /// degraded read); straggler puts are never dropped (their RPCs are
  /// already in flight) and register unconditionally via BeginDetachedOp.
  static constexpr size_t kMaxDetachedRepairs = 32;
  void BeginDetachedOp();
  void EndDetachedOp();
  void DrainDetachedOps();

  /// Stage 2 of an update: version assigned, pages stored (WRITE) or about
  /// to be stored (APPEND) — runs the remaining chain through metadata
  /// build and publication.
  Future<Version> RunUpdateAsync(std::shared_ptr<UpdateOp> op);

  /// Builds the new snapshot's tree (paper Algorithm 4) and writes it:
  /// leaves (with chain bookkeeping and compaction) fan out in parallel,
  /// then inner nodes assemble from border resolutions, then all nodes are
  /// written in one wave.
  Future<Unit> BuildAndWriteMetaAsync(std::shared_ptr<UpdateOp> op);
  Future<Unit> BuildLeafAsync(std::shared_ptr<UpdateOp> op, PageWrite* w);
  Future<Version> ResolveBorderAsync(std::shared_ptr<UpdateOp> op,
                                     const Extent& block);

  /// Chain-walk composition: which stored bytes satisfy `needed` (page-
  /// local intervals) for the page `block` whose newest leaf is `leaf`.
  Future<std::vector<FetchPiece>> ResolveLeafPiecesAsync(
      const BranchAncestry& ancestry, const Extent& block,
      const meta::MetaNode& leaf, std::vector<Interval> needed);

  /// Fetches `pieces` into `dst` (piece i lands at
  /// bases[i] + page_local_off - range_offset). `dst` must stay alive until
  /// resolution; callers own it through their op state.
  Future<Unit> FetchPiecesIntoAsync(std::vector<FetchPiece> pieces,
                                    std::vector<uint64_t> bases,
                                    uint64_t range_offset, char* dst);

  rpc::Transport* transport_;
  ClientOptions options_;
  Clock* clock_;
  std::unique_ptr<Executor> owned_executor_;
  Executor* executor_;

  vmanager::VersionManagerClient vm_;
  pmanager::ProviderManagerClient pm_;
  dht::DhtClient dht_;
  locator::LocationIndex locator_;
  meta::MetaClient meta_;
  provider::ProviderClient providers_;

  std::mutex mu_;
  std::map<BlobId, BlobDescriptor> descriptors_;

  uint64_t client_id_;
  std::atomic<uint64_t> page_seq_{1};

  mutable std::mutex stats_mu_;
  ClientStats stats_;

  std::mutex detached_mu_;
  size_t detached_ops_ = 0;
  std::shared_ptr<WaitEvent> detached_waiter_;
};

}  // namespace blobseer::client

#endif  // BLOBSEER_CLIENT_BLOB_CLIENT_H_
