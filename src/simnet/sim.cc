#include "simnet/sim.h"

#include <algorithm>
#include <queue>

namespace blobseer::simnet {

namespace {
thread_local SimScheduler::TaskId tls_task_id = 0;
thread_local bool tls_has_task = false;
}  // namespace

SimScheduler::~SimScheduler() {
  for (auto& [id, task] : tasks_) {
    if (task->thread.joinable()) task->thread.join();
  }
}

SimScheduler::Task* SimScheduler::CurrentLocked() const {
  BS_CHECK(tls_has_task) << "not on a sim task";
  auto it = tasks_.find(tls_task_id);
  BS_CHECK(it != tasks_.end()) << "unknown sim task";
  return it->second.get();
}

double SimScheduler::Now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

uint32_t SimScheduler::CurrentNode() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CurrentLocked()->node;
}

void SimScheduler::SetCurrentNode(uint32_t node) {
  std::lock_guard<std::mutex> lock(mu_);
  CurrentLocked()->node = node;
}

size_t SimScheduler::tasks_alive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alive_;
}

void SimScheduler::MakeReadyLocked(Task* t) {
  t->state = Task::State::kReady;
  t->wake_time = kNever;
  t->wake_seq++;  // invalidates any heap entry for this task
  t->cond = nullptr;
  ready_.push_back(t->id);
}

void SimScheduler::PushWakeLocked(Task* t) {
  t->wake_seq++;
  wake_heap_.push(HeapEntry{t->wake_time, t->wake_seq, t->id});
}

SimScheduler::Task* SimScheduler::PickNextLocked() {
  if (!ready_.empty()) {
    TaskId id = ready_.front();
    ready_.pop_front();
    return tasks_.at(id).get();
  }
  // Advance virtual time to the earliest valid sleeper / deadline waiter.
  while (!wake_heap_.empty()) {
    HeapEntry e = wake_heap_.top();
    auto it = tasks_.find(e.task);
    if (it == tasks_.end() || it->second->wake_seq != e.seq) {
      wake_heap_.pop();  // stale
      continue;
    }
    Task* best = it->second.get();
    BS_CHECK(best->state == Task::State::kSleeping ||
             best->state == Task::State::kCondWait)
        << "live heap entry for non-blocked task";
    wake_heap_.pop();
    now_ = std::max(now_, e.time);
    if (best->cond) {
      auto& ws = best->cond->waiters_;
      ws.erase(std::remove(ws.begin(), ws.end(), best->id), ws.end());
    }
    best->state = Task::State::kReady;
    best->wake_seq++;
    best->cond = nullptr;
    return best;
  }
  return nullptr;
}

void SimScheduler::SwitchOutLocked(std::unique_lock<std::mutex>& lock,
                                   Task* me, bool rejoinable) {
  Task* next = PickNextLocked();
  if (next) {
    running_ = next->id;
    next->state = Task::State::kRunning;
    next->cv.notify_one();
  } else {
    // No runnable task. Legal only when the simulation is quiescing —
    // every other live task would otherwise wait forever.
    size_t blocked_others = alive_;
    if (me->state != Task::State::kDone) blocked_others--;
    BS_CHECK(blocked_others == 0)
        << "virtual-time deadlock: " << blocked_others
        << " tasks blocked with no wake source";
    running_ = 0;
  }
  if (!rejoinable) return;  // exiting task: do not wait to be rescheduled
  me->cv.wait(lock, [me] { return me->state == Task::State::kRunning; });
}

void SimScheduler::SleepFor(double us) {
  std::unique_lock<std::mutex> lock(mu_);
  Task* me = CurrentLocked();
  if (us <= 0) {
    // Yield: go to the back of the ready queue.
    MakeReadyLocked(me);
  } else {
    me->state = Task::State::kSleeping;
    me->wake_time = now_ + us;
    PushWakeLocked(me);
  }
  SwitchOutLocked(lock, me, /*rejoinable=*/true);
}

SimScheduler::TaskId SimScheduler::Spawn(std::function<void()> fn) {
  std::unique_lock<std::mutex> lock(mu_);
  Task* parent = CurrentLocked();
  TaskId id = ++next_id_;
  auto task = std::make_unique<Task>();
  Task* t = task.get();
  t->id = id;
  t->node = parent->node;
  alive_++;
  tasks_.emplace(id, std::move(task));
  ready_.push_back(id);

  t->thread = std::thread([this, t, fn = std::move(fn)] {
    tls_task_id = t->id;
    tls_has_task = true;
    {
      std::unique_lock<std::mutex> lk(mu_);
      t->cv.wait(lk, [t] { return t->state == Task::State::kRunning; });
    }
    fn();
    std::unique_lock<std::mutex> lk(mu_);
    t->state = Task::State::kDone;
    alive_--;
    for (TaskId w : t->join_waiters) {
      auto it = tasks_.find(w);
      if (it != tasks_.end() &&
          it->second->state == Task::State::kCondWait &&
          it->second->cond == nullptr) {
        it->second->notified = true;
        MakeReadyLocked(it->second.get());
      }
    }
    t->join_waiters.clear();
    SwitchOutLocked(lk, t, /*rejoinable=*/false);
  });
  return id;
}

void SimScheduler::Join(TaskId id) {
  std::unique_lock<std::mutex> lock(mu_);
  Task* me = CurrentLocked();
  for (;;) {
    auto it = tasks_.find(id);
    if (it == tasks_.end()) return;  // already joined and reaped
    Task* target = it->second.get();
    if (target->state == Task::State::kDone) break;
    target->join_waiters.push_back(me->id);
    me->state = Task::State::kCondWait;
    me->wake_time = kNever;
    me->cond = nullptr;
    me->notified = false;
    SwitchOutLocked(lock, me, /*rejoinable=*/true);
  }
  // Reap: join the OS thread (outside the lock — the exiting thread only
  // touches scheduler state before leaving its lambda) and drop the record
  // so the scheduler's structures stay O(live tasks).
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  std::thread reaped = std::move(it->second->thread);
  lock.unlock();
  if (reaped.joinable()) reaped.join();
  lock.lock();
  tasks_.erase(id);
}

void SimScheduler::Run(std::function<void()> root) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    BS_CHECK(tasks_.empty()) << "SimScheduler::Run is single-shot";
    TaskId id = ++next_id_;
    auto task = std::make_unique<Task>();
    task->id = id;
    task->state = Task::State::kRunning;
    running_ = id;
    alive_++;
    tls_task_id = id;
    tls_has_task = true;
    tasks_.emplace(id, std::move(task));
  }
  root();
  // Drain: wait for every spawned task to finish.
  for (;;) {
    TaskId pending = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [id, task] : tasks_) {
        if (id != tls_task_id) {
          pending = id;
          break;
        }
      }
    }
    if (pending == 0) break;
    Join(pending);
  }
  std::lock_guard<std::mutex> lock(mu_);
  Task* me = CurrentLocked();
  me->state = Task::State::kDone;
  alive_--;
  running_ = 0;
  tasks_.erase(me->id);
  tls_has_task = false;
}

bool SimCondition::WaitUntil(double deadline_us) {
  std::unique_lock<std::mutex> lock(sched_->mu_);
  SimScheduler::Task* me = sched_->CurrentLocked();
  me->state = SimScheduler::Task::State::kCondWait;
  me->wake_time = deadline_us;
  me->cond = this;
  me->notified = false;
  waiters_.push_back(me->id);
  if (deadline_us != SimScheduler::kNever) sched_->PushWakeLocked(me);
  sched_->SwitchOutLocked(lock, me, /*rejoinable=*/true);
  bool notified = me->notified;
  me->notified = false;
  return notified;
}

void SimCondition::NotifyAll() {
  std::lock_guard<std::mutex> lock(sched_->mu_);
  for (SimScheduler::TaskId id : waiters_) {
    auto it = sched_->tasks_.find(id);
    if (it == sched_->tasks_.end()) continue;
    SimScheduler::Task* t = it->second.get();
    if (t->state != SimScheduler::Task::State::kCondWait || t->cond != this)
      continue;
    t->notified = true;
    sched_->MakeReadyLocked(t);
  }
  waiters_.clear();
}

void SimSemaphore::Acquire() {
  if (free_ > 0) {
    free_--;
    return;
  }
  auto cond = std::make_unique<SimCondition>(sched_);
  SimCondition* c = cond.get();
  queue_.push_back(std::move(cond));
  // Woken exactly once by Release, which transfers the slot to us.
  c->WaitUntil(SimScheduler::kNever);
}

void SimSemaphore::Release() {
  if (!queue_.empty()) {
    std::unique_ptr<SimCondition> cond = std::move(queue_.front());
    queue_.pop_front();
    // Slot handed directly to the woken task; `free_` unchanged. NotifyAll
    // completes before the condition object dies.
    cond->NotifyAll();
    return;
  }
  free_++;
}

Status SimExecutor::ParallelFor(size_t n, size_t max_parallel,
                                const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (max_parallel == 0) max_parallel = 8;
  size_t workers = std::min(n, max_parallel);
  if (workers <= 1) {
    Status first;
    for (size_t i = 0; i < n; i++) {
      Status s = fn(i);
      if (!s.ok() && first.ok()) first = s;
    }
    return first;
  }
  // Shared index counter; tasks are serialized so plain variables are safe.
  auto next = std::make_shared<size_t>(0);
  auto first = std::make_shared<Status>();
  std::vector<SimScheduler::TaskId> ids;
  ids.reserve(workers);
  for (size_t w = 0; w < workers; w++) {
    ids.push_back(sched_->Spawn([n, next, first, &fn] {
      for (;;) {
        size_t i = (*next)++;
        if (i >= n) return;
        Status s = fn(i);
        if (!s.ok() && first->ok()) *first = s;
      }
    }));
  }
  for (auto id : ids) sched_->Join(id);
  return *first;
}

}  // namespace blobseer::simnet
