// Virtual-time cooperative scheduler.
//
// Each simulated process is a real OS thread, but exactly one runs at any
// instant: every blocking interaction goes through the scheduler, which
// advances a virtual clock to the next event when all tasks are blocked.
// This lets the *real* BlobSeer client and service code run unmodified on a
// simulated 175-node network (DESIGN.md S11), deterministically and without
// wall-clock sleeps.
//
// Rules for code running on sim tasks:
//  * never block on bare std::mutex/condvars across sim calls — plain
//    critical sections are fine (tasks are serialized), blocking is not;
//  * all sleeping/waiting must go through SimScheduler primitives (via
//    SimClock / SimCondition / SimNetwork).
#ifndef BLOBSEER_SIMNET_SIM_H_
#define BLOBSEER_SIMNET_SIM_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/executor.h"
#include "common/logging.h"

namespace blobseer::simnet {

class SimCondition;

class SimScheduler {
 public:
  using TaskId = uint64_t;
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  SimScheduler() = default;
  ~SimScheduler();

  SimScheduler(const SimScheduler&) = delete;
  SimScheduler& operator=(const SimScheduler&) = delete;

  /// Runs `root` as task 0 on the calling thread; returns once every task
  /// has finished.
  void Run(std::function<void()> root);

  /// Virtual time in microseconds.
  double Now() const;

  /// Suspends the calling task for `us` virtual microseconds.
  void SleepFor(double us);

  /// Spawns a task; it inherits the caller's node id. Must be called from a
  /// running sim task (or before Run for the initial set — not supported;
  /// spawn from root).
  TaskId Spawn(std::function<void()> fn);

  /// Blocks the calling task until `id` finishes.
  void Join(TaskId id);

  /// Node id associated with the running task (used by SimTransport to
  /// locate the caller in the network).
  uint32_t CurrentNode() const;
  void SetCurrentNode(uint32_t node);

  size_t tasks_alive() const;

 private:
  friend class SimCondition;

  struct Task {
    TaskId id = 0;
    enum class State { kReady, kRunning, kSleeping, kCondWait, kDone };
    State state = State::kReady;
    double wake_time = kNever;
    uint64_t wake_seq = 0;  ///< invalidates stale wake-heap entries
    bool notified = false;
    SimCondition* cond = nullptr;
    uint32_t node = 0;
    std::condition_variable cv;
    std::thread thread;  // empty for the root task
    std::vector<TaskId> join_waiters;
  };

  /// Lazy min-heap entry over (wake_time); entries whose (task, seq) no
  /// longer match are skipped at pop time. Keeps scheduling O(log n) in
  /// live tasks rather than O(all tasks ever spawned).
  struct HeapEntry {
    double time;
    uint64_t seq;
    TaskId task;
    bool operator>(const HeapEntry& o) const { return time > o.time; }
  };

  Task* CurrentLocked() const;
  /// Marks the current task non-running, picks and wakes the next runnable
  /// task, then blocks until this task is running again (no-op for exit).
  void SwitchOutLocked(std::unique_lock<std::mutex>& lock, Task* me,
                       bool rejoinable);
  Task* PickNextLocked();
  void MakeReadyLocked(Task* t);
  void PushWakeLocked(Task* t);

  mutable std::mutex mu_;
  double now_ = 0;
  std::map<TaskId, std::unique_ptr<Task>> tasks_;
  std::deque<TaskId> ready_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      wake_heap_;
  TaskId running_ = 0;
  TaskId next_id_ = 0;
  size_t alive_ = 0;
};

/// Condition variable in virtual time. Waiters are woken by NotifyAll (or
/// their deadline); spurious wakeups do not occur.
class SimCondition {
 public:
  explicit SimCondition(SimScheduler* sched) : sched_(sched) {}

  /// Waits until notified or until virtual `deadline_us` (kNever = no
  /// deadline). Returns true iff notified.
  bool WaitUntil(double deadline_us);

  /// Wakes every waiter at the current virtual time.
  void NotifyAll();

 private:
  friend class SimScheduler;
  SimScheduler* sched_;
  std::vector<SimScheduler::TaskId> waiters_;
};

/// FIFO counting semaphore in virtual time; models bounded service
/// concurrency at an endpoint (request queueing).
class SimSemaphore {
 public:
  SimSemaphore(SimScheduler* sched, size_t slots)
      : sched_(sched), free_(slots) {}

  void Acquire();
  void Release();

 private:
  SimScheduler* sched_;
  size_t free_;
  std::deque<std::unique_ptr<SimCondition>> queue_;
};

/// Clock interface adapter for client code running on sim tasks.
class SimClock : public Clock {
 public:
  explicit SimClock(SimScheduler* sched) : sched_(sched) {}
  uint64_t NowMicros() override {
    return static_cast<uint64_t>(sched_->Now());
  }
  void SleepForMicros(uint64_t micros) override {
    sched_->SleepFor(static_cast<double>(micros));
  }

 private:
  SimScheduler* sched_;
};

/// WaitEvent in virtual time: parks the calling sim task on a SimCondition
/// instead of a real condvar (which would stall the whole scheduler).
/// Signal and Await must both run on sim tasks.
class SimWaitEvent : public WaitEvent {
 public:
  explicit SimWaitEvent(SimScheduler* sched) : cond_(sched) {}
  void Signal() override {
    // Sim tasks are serialized by the scheduler, so the flag needs no lock.
    signaled_ = true;
    cond_.NotifyAll();
  }
  void Await() override {
    while (!signaled_) cond_.WaitUntil(SimScheduler::kNever);
  }

 private:
  SimCondition cond_;
  bool signaled_ = false;
};

/// Executor that fans work out over spawned sim tasks (the sim counterpart
/// of ThreadPoolExecutor).
class SimExecutor : public Executor {
 public:
  explicit SimExecutor(SimScheduler* sched) : sched_(sched) {}
  Status ParallelFor(size_t n, size_t max_parallel,
                     const std::function<Status(size_t)>& fn) override;
  /// Runs `fn` on a fresh sim task. Must be called from a running sim task
  /// (future continuations under simnet always are).
  void Schedule(std::function<void()> fn) override {
    sched_->Spawn(std::move(fn));
  }
  std::unique_ptr<WaitEvent> MakeWaitEvent() override {
    return std::make_unique<SimWaitEvent>(sched_);
  }

 private:
  SimScheduler* sched_;
};

}  // namespace blobseer::simnet

#endif  // BLOBSEER_SIMNET_SIM_H_
