// rpc::Transport implementation over the simulated network: request and
// response payloads are charged to the NIC flow model, service handlers run
// behind per-endpoint FIFO queues with configurable CPU cost per request.
#ifndef BLOBSEER_SIMNET_TRANSPORT_H_
#define BLOBSEER_SIMNET_TRANSPORT_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "rpc/transport.h"
#include "simnet/network.h"
#include "simnet/sim.h"

namespace blobseer::simnet {

/// Per-endpoint service cost model.
struct SimServiceProfile {
  /// CPU time consumed per request while holding a service slot.
  double request_cpu_us = 50.0;
  /// Concurrent requests served per endpoint (1 = fully serialized).
  size_t concurrency = 1;
};

/// Addresses have the form "sim://<node-id>/<service-name>".
class SimTransport : public rpc::Transport {
 public:
  SimTransport(SimScheduler* sched, SimNetwork* net);
  ~SimTransport() override;

  Result<std::string> Serve(const std::string& address,
                            std::shared_ptr<rpc::ServiceHandler> handler) override;
  Status StopServing(const std::string& address) override;
  Result<std::shared_ptr<rpc::Channel>> Connect(
      const std::string& address) override;

  /// Sim channels resolve the endpoint on every call, so a pre-restart
  /// channel works again the moment the endpoint re-serves; reconnect-on-
  /// Unavailable retries would only distort the simulated failure model.
  bool binds_at_connect() const override { return false; }

  /// Sets the cost profile of an endpoint (before or after Serve).
  void SetServiceProfile(const std::string& address,
                         const SimServiceProfile& profile);

  /// Fault injection: while set, every RPC from `src_node` to `address` is
  /// charged its request transfer and then lost (the caller observes
  /// Unavailable, the handler never runs). Models scripted message loss —
  /// e.g. heartbeat loss without process death — deterministically.
  void SetDropCallsFrom(uint32_t src_node, const std::string& address,
                        bool drop);

  static std::string MakeAddress(uint32_t node, const std::string& name);
  static Status ParseAddress(const std::string& address, uint32_t* node,
                             std::string* name);

  /// Internal endpoint record; public so the channel implementation in the
  /// .cc can reference it.
  struct Endpoint {
    uint32_t node = 0;
    std::shared_ptr<rpc::ServiceHandler> handler;
    SimServiceProfile profile;
    std::unique_ptr<SimSemaphore> queue;
  };

  /// Channels resolve their endpoint per call (not at Connect), so a
  /// StopServing + Serve restart becomes visible to already-connected
  /// clients — exactly like reconnecting to a restarted process.
  std::shared_ptr<Endpoint> LookupEndpoint(const std::string& address) const;
  bool ShouldDrop(const std::string& address, uint32_t src_node) const;

 private:
  SimScheduler* sched_;
  SimNetwork* net_;
  std::map<std::string, std::shared_ptr<Endpoint>> endpoints_;
  std::map<std::string, SimServiceProfile> pending_profiles_;
  std::map<std::string, std::set<uint32_t>> drop_from_;
};

}  // namespace blobseer::simnet

#endif  // BLOBSEER_SIMNET_TRANSPORT_H_
