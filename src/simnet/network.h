// Flow-level network model over the virtual-time scheduler.
//
// Every node has a full-duplex NIC (independent up/down capacities — the
// Grid'5000 profile is 117.5 MB/s measured TCP on 1 Gbit/s links, 0.1 ms
// latency). A transfer is a fluid flow; its rate is recomputed when flows
// start or finish. Two sharing models:
//
//  * kEndpointShare (default): rate = min(up_cap/src_out_flows,
//    down_cap/dst_in_flows). O(endpoint degree) per event; no
//    redistribution of unused shares. Accurate for the symmetric workloads
//    of the paper's evaluation and cheap enough for 175-node runs.
//  * kMaxMin: exact progressive-filling max-min fairness. O(nodes * flows)
//    per event; used in validation tests and small scenarios.
#ifndef BLOBSEER_SIMNET_NETWORK_H_
#define BLOBSEER_SIMNET_NETWORK_H_

#include <cstdint>
#include <list>
#include <memory>
#include <vector>

#include "simnet/sim.h"

namespace blobseer::simnet {

struct SimNetworkOptions {
  double nic_bytes_per_sec = 117.5e6;  ///< per direction, per node
  double latency_us = 100.0;           ///< one-way propagation
  enum class Sharing { kEndpointShare, kMaxMin };
  Sharing sharing = Sharing::kEndpointShare;
  /// Node-local (src == dst) transfers skip the NIC and cost latency only.
  bool loopback_bypass = true;
};

class SimNetwork {
 public:
  SimNetwork(SimScheduler* sched, size_t num_nodes,
             SimNetworkOptions options = {});
  ~SimNetwork();

  /// Moves `bytes` from node `src` to node `dst` in virtual time, blocking
  /// the calling sim task for latency + serialization under fair sharing.
  void Transfer(uint32_t src, uint32_t dst, uint64_t bytes);

  /// Overrides one node's NIC capacity (both directions).
  void SetNodeCapacity(uint32_t node, double bytes_per_sec);

  /// Rescales the base one-way latency at runtime — campaign scripts
  /// degrade or restore the whole fabric mid-run (WAN episodes, congested
  /// periods). Applies to transfers started after the call.
  void set_latency_us(double us) { options_.latency_us = us; }
  double latency_us() const { return options_.latency_us; }

  /// Extra one-way latency charged to every transfer touching `node`, on
  /// top of the base — scripts a slow link or far region per node.
  void SetNodeExtraLatency(uint32_t node, double us);

  size_t num_nodes() const { return nodes_.size(); }
  uint64_t completed_transfers() const { return completed_; }
  double busiest_node_utilization_bytes() const;

 private:
  struct Flow {
    uint32_t src = 0;
    uint32_t dst = 0;
    double remaining = 0;
    double rate = 0;
    std::unique_ptr<SimCondition> rate_changed;
  };
  struct Node {
    double up_cap = 0;
    double down_cap = 0;
    double extra_latency_us = 0;
    std::vector<Flow*> out_flows;
    std::vector<Flow*> in_flows;
    double bytes_sent = 0;
    double bytes_received = 0;
  };

  void AttachFlow(Flow* f);
  void DetachFlow(Flow* f);
  /// Endpoint-share: refresh rates of all flows touching src/dst.
  void RecomputeEndpoint(uint32_t src, uint32_t dst);
  /// Max-min: refresh all flow rates by progressive filling.
  void RecomputeMaxMin();
  double EndpointRate(const Flow& f) const;

  SimScheduler* sched_;
  SimNetworkOptions options_;
  std::vector<Node> nodes_;
  std::list<Flow*> flows_;
  uint64_t completed_ = 0;
};

}  // namespace blobseer::simnet

#endif  // BLOBSEER_SIMNET_NETWORK_H_
