#include "simnet/network.h"

#include <algorithm>

#include "common/logging.h"

namespace blobseer::simnet {

SimNetwork::SimNetwork(SimScheduler* sched, size_t num_nodes,
                       SimNetworkOptions options)
    : sched_(sched), options_(options), nodes_(num_nodes) {
  for (Node& n : nodes_) {
    n.up_cap = options_.nic_bytes_per_sec;
    n.down_cap = options_.nic_bytes_per_sec;
  }
}

SimNetwork::~SimNetwork() = default;

void SimNetwork::SetNodeCapacity(uint32_t node, double bytes_per_sec) {
  BS_CHECK(node < nodes_.size()) << "bad node id";
  nodes_[node].up_cap = bytes_per_sec;
  nodes_[node].down_cap = bytes_per_sec;
}

void SimNetwork::SetNodeExtraLatency(uint32_t node, double us) {
  BS_CHECK(node < nodes_.size()) << "bad node id";
  nodes_[node].extra_latency_us = us;
}

double SimNetwork::EndpointRate(const Flow& f) const {
  const Node& s = nodes_[f.src];
  const Node& d = nodes_[f.dst];
  double up = s.up_cap / static_cast<double>(s.out_flows.size());
  double down = d.down_cap / static_cast<double>(d.in_flows.size());
  return std::min(up, down);
}

void SimNetwork::AttachFlow(Flow* f) {
  nodes_[f->src].out_flows.push_back(f);
  nodes_[f->dst].in_flows.push_back(f);
  flows_.push_back(f);
}

void SimNetwork::DetachFlow(Flow* f) {
  auto erase_from = [f](std::vector<Flow*>& v) {
    v.erase(std::remove(v.begin(), v.end(), f), v.end());
  };
  erase_from(nodes_[f->src].out_flows);
  erase_from(nodes_[f->dst].in_flows);
  flows_.remove(f);
}

void SimNetwork::RecomputeEndpoint(uint32_t src, uint32_t dst) {
  // Only flows sharing an endpoint with the changed flow can change rate.
  auto refresh = [this](Flow* f) {
    double r = EndpointRate(*f);
    if (r != f->rate) {
      f->rate = r;
      f->rate_changed->NotifyAll();
    }
  };
  for (Flow* f : nodes_[src].out_flows) refresh(f);
  for (Flow* f : nodes_[src].in_flows) refresh(f);
  if (dst != src) {
    for (Flow* f : nodes_[dst].out_flows) refresh(f);
    for (Flow* f : nodes_[dst].in_flows) refresh(f);
  }
}

void SimNetwork::RecomputeMaxMin() {
  // Progressive filling over per-direction node links.
  struct LinkState {
    double cap = 0;
    std::vector<Flow*> unfixed;
  };
  std::vector<LinkState> links(nodes_.size() * 2);  // [2n]=up, [2n+1]=down
  for (size_t n = 0; n < nodes_.size(); n++) {
    links[2 * n].cap = nodes_[n].up_cap;
    links[2 * n + 1].cap = nodes_[n].down_cap;
  }
  for (Flow* f : flows_) {
    links[2 * f->src].unfixed.push_back(f);
    links[2 * f->dst + 1].unfixed.push_back(f);
  }
  std::vector<double> new_rate;
  std::vector<Flow*> order(flows_.begin(), flows_.end());
  std::vector<char> fixed(order.size(), 0);
  auto index_of = [&](Flow* f) {
    return std::distance(order.begin(),
                         std::find(order.begin(), order.end(), f));
  };
  new_rate.assign(order.size(), 0.0);

  size_t remaining = order.size();
  while (remaining > 0) {
    // Find the bottleneck link: smallest fair share among links with
    // unfixed flows.
    double best_share = 0;
    LinkState* best = nullptr;
    for (LinkState& l : links) {
      size_t n_unfixed = 0;
      for (Flow* f : l.unfixed)
        if (!fixed[index_of(f)]) n_unfixed++;
      if (n_unfixed == 0) continue;
      double share = l.cap / static_cast<double>(n_unfixed);
      if (!best || share < best_share) {
        best = &l;
        best_share = share;
      }
    }
    if (!best) break;
    for (Flow* f : best->unfixed) {
      size_t i = index_of(f);
      if (fixed[i]) continue;
      fixed[i] = 1;
      new_rate[i] = best_share;
      remaining--;
      // Consume capacity on the flow's other link.
      links[2 * f->src].cap = std::max(0.0, links[2 * f->src].cap - best_share);
      links[2 * f->dst + 1].cap =
          std::max(0.0, links[2 * f->dst + 1].cap - best_share);
    }
    best->cap = 0;
  }
  for (size_t i = 0; i < order.size(); i++) {
    if (order[i]->rate != new_rate[i]) {
      order[i]->rate = new_rate[i];
      order[i]->rate_changed->NotifyAll();
    }
  }
}

void SimNetwork::Transfer(uint32_t src, uint32_t dst, uint64_t bytes) {
  BS_CHECK(src < nodes_.size() && dst < nodes_.size()) << "bad node id";
  const double latency = options_.latency_us + nodes_[src].extra_latency_us +
                         nodes_[dst].extra_latency_us;
  if (latency > 0) sched_->SleepFor(latency);
  if (bytes == 0) return;
  nodes_[src].bytes_sent += static_cast<double>(bytes);
  nodes_[dst].bytes_received += static_cast<double>(bytes);
  if (src == dst && options_.loopback_bypass) {
    completed_++;
    return;
  }

  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.remaining = static_cast<double>(bytes);
  flow.rate_changed = std::make_unique<SimCondition>(sched_);
  AttachFlow(&flow);
  if (options_.sharing == SimNetworkOptions::Sharing::kMaxMin) {
    RecomputeMaxMin();
  } else {
    RecomputeEndpoint(src, dst);
  }

  while (flow.remaining > 1e-6) {
    // Rates are bytes/second; the virtual clock ticks in microseconds.
    double rate_per_us = flow.rate / 1e6;
    BS_CHECK(rate_per_us > 0) << "flow with zero rate";
    double t0 = sched_->Now();
    double eta = t0 + flow.remaining / rate_per_us;
    bool rate_changed = flow.rate_changed->WaitUntil(eta);
    double elapsed = sched_->Now() - t0;
    flow.remaining -= elapsed * rate_per_us;
    if (!rate_changed) break;  // deadline: transfer complete
  }

  DetachFlow(&flow);
  if (options_.sharing == SimNetworkOptions::Sharing::kMaxMin) {
    RecomputeMaxMin();
  } else {
    RecomputeEndpoint(src, dst);
  }
  completed_++;
}

double SimNetwork::busiest_node_utilization_bytes() const {
  double best = 0;
  for (const Node& n : nodes_) {
    best = std::max(best, std::max(n.bytes_sent, n.bytes_received));
  }
  return best;
}

}  // namespace blobseer::simnet
