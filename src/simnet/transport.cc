#include "simnet/transport.h"

#include <cstdlib>

#include "common/string_util.h"

namespace blobseer::simnet {

namespace {

class SimChannel : public rpc::Channel {
 public:
  SimChannel(SimScheduler* sched, SimNetwork* net,
             const SimTransport* transport, std::string address)
      : sched_(sched),
        net_(net),
        transport_(transport),
        address_(std::move(address)) {}

  Status Call(rpc::Method method, Slice request,
              std::string* response) override {
    // Endpoint resolved per call: a restarted endpoint (StopServing +
    // Serve) serves cached channels again, a stopped one fails them.
    auto ep = transport_->LookupEndpoint(address_);
    if (!ep) return Status::Unavailable("sim endpoint gone: " + address_);
    uint32_t src = sched_->CurrentNode();

    net_->Transfer(src, ep->node,
                   request.size() + rpc::kWireOverheadBytes);
    if (transport_->ShouldDrop(address_, src)) {
      // Scripted loss: the request left the NIC but never reaches the
      // service (and no response ever comes back).
      return Status::Unavailable("sim rpc dropped: " + address_);
    }
    ep->queue->Acquire();
    if (ep->profile.request_cpu_us > 0)
      sched_->SleepFor(ep->profile.request_cpu_us);

    // Drive the handler's async entry point so a parked request
    // (server-push, e.g. an AwaitPublished subscription) suspends only this
    // sim task in virtual time. The stack-allocated event is safe: the
    // completion always fires on a sim task (publish, watchdog, or inline)
    // and this task awaits it before returning; tasks are serialized, so
    // the shared state needs no lock.
    struct PendingState {
      bool done = false;
      Status status;
      std::string payload;
    };
    auto state = std::make_shared<PendingState>();
    SimWaitEvent event(sched_);
    ep->handler->HandleAsync(method, request,
                             [state, &event](Status st, std::string payload) {
                               state->status = std::move(st);
                               state->payload = std::move(payload);
                               state->done = true;
                               event.Signal();
                             });
    // A parked request must not pin a service concurrency slot: the
    // server's worker is free the moment the handler returns.
    ep->queue->Release();
    if (!state->done) event.Await();

    // The response is charged at completion (virtual "now" = publish time
    // for a push), so a pushed publication lands one network transfer after
    // the event that resolved it.
    Status st = std::move(state->status);
    *response = std::move(state->payload);
    uint64_t resp_bytes =
        (st.ok() ? response->size() : st.message().size()) +
        rpc::kWireOverheadBytes;
    net_->Transfer(ep->node, src, resp_bytes);
    return st;
  }

  // Native async path: the blocking flow-model call moves to a spawned sim
  // task, so the issuing task continues immediately (in-flight requests
  // from one sim client overlap in virtual time exactly as pipelined real
  // requests would). Must be invoked from a running sim task.
  void CallAsync(rpc::Method method, Slice request,
                 rpc::CallCallback done) override {
    sched_->Spawn([this, method, request = request.ToString(),
                   done = std::move(done)] {
      std::string response;
      Status st = Call(method, Slice(request), &response);
      done(std::move(st), std::move(response));
    });
  }

 private:
  SimScheduler* sched_;
  SimNetwork* net_;
  const SimTransport* transport_;
  std::string address_;
};

}  // namespace

SimTransport::SimTransport(SimScheduler* sched, SimNetwork* net)
    : sched_(sched), net_(net) {}

SimTransport::~SimTransport() = default;

std::string SimTransport::MakeAddress(uint32_t node, const std::string& name) {
  return StrFormat("sim://%u/%s", node, name.c_str());
}

Status SimTransport::ParseAddress(const std::string& address, uint32_t* node,
                                  std::string* name) {
  if (!StartsWith(address, "sim://"))
    return Status::InvalidArgument("not a sim address: " + address);
  size_t slash = address.find('/', 6);
  if (slash == std::string::npos)
    return Status::InvalidArgument("sim address missing service: " + address);
  *node = static_cast<uint32_t>(
      strtoul(address.substr(6, slash - 6).c_str(), nullptr, 10));
  *name = address.substr(slash + 1);
  return Status::OK();
}

Result<std::string> SimTransport::Serve(
    const std::string& address, std::shared_ptr<rpc::ServiceHandler> handler) {
  uint32_t node;
  std::string name;
  BS_RETURN_NOT_OK(ParseAddress(address, &node, &name));
  if (node >= net_->num_nodes())
    return Status::InvalidArgument("sim node out of range: " + address);
  if (endpoints_.count(address))
    return Status::AlreadyExists("sim endpoint: " + address);
  auto ep = std::make_shared<Endpoint>();
  ep->node = node;
  ep->handler = std::move(handler);
  auto pending = pending_profiles_.find(address);
  if (pending != pending_profiles_.end()) ep->profile = pending->second;
  ep->queue = std::make_unique<SimSemaphore>(
      sched_, ep->profile.concurrency == 0 ? 1 : ep->profile.concurrency);
  endpoints_[address] = std::move(ep);
  return address;
}

Status SimTransport::StopServing(const std::string& address) {
  if (endpoints_.erase(address) == 0)
    return Status::NotFound("sim endpoint: " + address);
  return Status::OK();
}

Result<std::shared_ptr<rpc::Channel>> SimTransport::Connect(
    const std::string& address) {
  if (!endpoints_.count(address))
    return Status::Unavailable("no sim endpoint: " + address);
  return std::shared_ptr<rpc::Channel>(
      std::make_shared<SimChannel>(sched_, net_, this, address));
}

std::shared_ptr<SimTransport::Endpoint> SimTransport::LookupEndpoint(
    const std::string& address) const {
  auto it = endpoints_.find(address);
  return it == endpoints_.end() ? nullptr : it->second;
}

bool SimTransport::ShouldDrop(const std::string& address,
                              uint32_t src_node) const {
  auto it = drop_from_.find(address);
  return it != drop_from_.end() && it->second.count(src_node) != 0;
}

void SimTransport::SetDropCallsFrom(uint32_t src_node,
                                    const std::string& address, bool drop) {
  if (drop) {
    drop_from_[address].insert(src_node);
  } else {
    auto it = drop_from_.find(address);
    if (it != drop_from_.end()) {
      it->second.erase(src_node);
      if (it->second.empty()) drop_from_.erase(it);
    }
  }
}

void SimTransport::SetServiceProfile(const std::string& address,
                                     const SimServiceProfile& profile) {
  auto it = endpoints_.find(address);
  if (it == endpoints_.end()) {
    pending_profiles_[address] = profile;
    return;
  }
  it->second->profile = profile;
  it->second->queue = std::make_unique<SimSemaphore>(
      sched_, profile.concurrency == 0 ? 1 : profile.concurrency);
}

}  // namespace blobseer::simnet
