// Deployment-shaped demo: a BlobSeer cluster over real TCP sockets on
// loopback — version manager + provider manager + co-deployed data/metadata
// providers, exactly the roles `blobseer_server` hosts across machines —
// exercised by concurrent client threads with paper-interface traffic.
//
// Run: ./build/examples/tcp_cluster
#include <cstdio>
#include <thread>
#include <vector>

#include "core/cluster.h"

using namespace blobseer;

int main() {
  core::ClusterOptions copts;
  copts.transport = "tcp";
  copts.num_providers = 4;
  copts.num_meta = 4;
  auto cluster = core::EmbeddedCluster::Start(copts);
  if (!cluster.ok()) {
    fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }
  printf("TCP cluster up:\n  version manager  %s\n  provider manager %s\n",
         (*cluster)->vmanager_address().c_str(),
         (*cluster)->pmanager_address().c_str());
  for (size_t i = 0; i < (*cluster)->provider_addresses().size(); i++) {
    printf("  provider %zu       %s   meta %zu  %s\n", i,
           (*cluster)->provider_addresses()[i].c_str(), i,
           (*cluster)->dht_addresses()[i].c_str());
  }

  auto owner = (*cluster)->NewClient();
  if (!owner.ok()) return 1;
  auto id = (*owner)->Create(64 * 1024);
  if (!id.ok()) return 1;

  // Concurrent appenders over real sockets.
  constexpr int kWriters = 4;
  constexpr int kAppendsEach = 8;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      auto client = (*cluster)->NewClient();
      if (!client.ok()) return;
      std::string data(256 * 1024, static_cast<char>('a' + w));
      for (int i = 0; i < kAppendsEach; i++) {
        auto v = (*client)->Append(*id, Slice(data));
        if (!v.ok()) {
          fprintf(stderr, "append: %s\n", v.status().ToString().c_str());
          return;
        }
      }
    });
  }
  for (auto& t : writers) t.join();

  auto v = (*owner)->GetRecent(*id);
  if (!v.ok() || !(*owner)->Sync(*id, v->version).ok()) return 1;
  printf("\n%d writers appended %d x 256 KiB each over TCP -> version %llu, "
         "%.1f MiB\n",
         kWriters, kAppendsEach, static_cast<unsigned long long>(v->version),
         static_cast<double>(v->size) / (1 << 20));

  // Verify every append landed exactly once (each writer's byte value must
  // fill whole 256 KiB extents).
  std::string all;
  if (!(*owner)->Read(*id, v->version, 0, v->size, &all).ok()) return 1;
  int counts[kWriters] = {};
  bool torn = false;
  for (uint64_t off = 0; off < v->size; off += 256 * 1024) {
    char c = all[off];
    for (uint64_t i = 0; i < 256 * 1024; i++) {
      if (all[off + i] != c) {
        torn = true;
        break;
      }
    }
    if (c >= 'a' && c < 'a' + kWriters) counts[c - 'a']++;
  }
  printf("atomicity check: %s\n", torn ? "TORN APPEND (bug!)" : "no torn appends");
  for (int w = 0; w < kWriters; w++) {
    printf("  writer %c: %d/%d appends visible\n", 'a' + w, counts[w],
           kAppendsEach);
    if (counts[w] != kAppendsEach) return 1;
  }
  if (torn) return 1;

  printf("tcp_cluster OK\n");
  return 0;
}
