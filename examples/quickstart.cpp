// Quickstart: start an embedded BlobSeer cluster, create a blob, append,
// overwrite, read past and present versions, branch, and pipeline async
// appends — the full interface of paper section 2.1 in one file.
//
// Build & run:  ./build/examples/quickstart
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/future.h"
#include "core/cluster.h"

using namespace blobseer;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    auto _st = (expr);                                            \
    if (!_st.ok()) {                                              \
      fprintf(stderr, "FAILED %s: %s\n", #expr,                   \
              _st.ToString().c_str());                            \
      return 1;                                                   \
    }                                                             \
  } while (0)

int main() {
  // 1. An embedded cluster: 4 data providers + 4 metadata providers, a
  //    version manager and a provider manager, all in-process.
  core::ClusterOptions copts;
  copts.num_providers = 4;
  copts.num_meta = 4;
  auto cluster = core::EmbeddedCluster::Start(copts);
  if (!cluster.ok()) {
    fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }

  auto client_or = (*cluster)->NewClient();
  if (!client_or.ok()) return 1;
  client::BlobClient& client = **client_or;

  // 2. CREATE a blob with 16-byte pages (tiny, to show the mechanics).
  auto id = client.Create(/*psize=*/16);
  if (!id.ok()) return 1;
  client::Blob blob(&client, *id);
  printf("created blob %llu\n", static_cast<unsigned long long>(*id));

  // 3. APPEND twice; every update yields a new snapshot version.
  auto v1 = blob.AppendSync("hello, versioned ");
  auto v2 = blob.AppendSync("world!");
  if (!v1.ok() || !v2.ok()) return 1;
  printf("appends produced versions %llu and %llu\n",
         static_cast<unsigned long long>(*v1),
         static_cast<unsigned long long>(*v2));

  // 4. WRITE overwrites part of the blob, producing version 3 — but
  //    version 2 stays readable (versioning!).
  auto v3 = blob.WriteSync("WORLD", 17);
  if (!v3.ok()) return 1;

  std::string now, before;
  CHECK_OK(blob.Read(*v3, 0, 23, &now));
  CHECK_OK(blob.Read(*v2, 0, 23, &before));
  printf("version %llu reads: %s\n", static_cast<unsigned long long>(*v3),
         now.c_str());
  printf("version %llu reads: %s\n", static_cast<unsigned long long>(*v2),
         before.c_str());

  // 5. BRANCH from version 2 and evolve independently.
  auto branch = blob.Branch(*v2);
  if (!branch.ok()) return 1;
  auto bv = branch->AppendSync(" (branched)");
  if (!bv.ok()) return 1;
  std::string branched;
  auto bver = branch->GetRecent();
  if (!bver.ok()) return 1;
  CHECK_OK(branch->Read(bver->version, 0, bver->size, &branched));
  printf("branch blob %llu version %llu reads: %s\n",
         static_cast<unsigned long long>(branch->id()),
         static_cast<unsigned long long>(bver->version), branched.c_str());

  // 6. The original blob is untouched by the branch.
  auto mv = blob.GetRecent();
  if (!mv.ok()) return 1;
  std::string main_read;
  CHECK_OK(blob.Read(mv->version, 0, mv->size, &main_read));
  printf("main blob still reads:  %s\n", main_read.c_str());

  // 7. Async pipeline: many appends in flight from one thread. Each
  //    AppendAsync returns a Future<Version>; WhenAll fans them back in.
  //    (Payloads must outlive the futures — the Slice is borrowed.)
  auto batch_id = client.Create(/*psize=*/64);
  if (!batch_id.ok()) return 1;
  client::Blob batch(&client, *batch_id);
  std::vector<std::string> records;
  for (int i = 0; i < 8; i++)
    records.push_back("record-" + std::to_string(i) + ";");
  std::vector<Future<Version>> in_flight;
  for (const std::string& r : records)
    in_flight.push_back(batch.AppendAsync(r));
  auto results = WhenAll(std::move(in_flight)).Wait();
  if (!results.ok()) return 1;
  Version last = 0;
  for (const auto& r : *results) {
    if (!r.ok()) {
      fprintf(stderr, "async append: %s\n", r.status().ToString().c_str());
      return 1;
    }
    last = std::max(last, *r);
  }
  CHECK_OK(batch.Sync(last));
  auto recent = batch.GetRecent();
  if (!recent.ok()) return 1;
  printf("async pipeline: %zu appends in flight -> version %llu, %llu "
         "bytes\n",
         records.size(), static_cast<unsigned long long>(recent->version),
         static_cast<unsigned long long>(recent->size));

  printf("quickstart OK\n");
  return 0;
}
