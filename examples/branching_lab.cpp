// Cheap branching (paper sections 1, 2.1): "the same computation may
// proceed independently on different versions of the blob ... very useful
// for exploring alternative data processing algorithms starting from the
// same blob version."
//
// A dataset blob receives a baseline signal; three alternative processing
// pipelines each BRANCH from the same published snapshot and rewrite the
// data their own way, in parallel. None of them copies the dataset, none
// interferes with the others, and the original stays frozen.
//
// Run: ./build/examples/branching_lab
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster.h"

using namespace blobseer;

namespace {

constexpr uint64_t kPsize = 1024;
constexpr uint64_t kSamples = 32 * 1024;  // one byte per sample

double MeanAbs(const std::string& s) {
  double sum = 0;
  for (unsigned char c : s) sum += std::abs(static_cast<int>(c) - 128);
  return sum / static_cast<double>(s.size());
}

}  // namespace

int main() {
  core::ClusterOptions copts;
  copts.num_providers = 4;
  copts.num_meta = 4;
  auto cluster = core::EmbeddedCluster::Start(copts);
  if (!cluster.ok()) return 1;
  auto client_or = (*cluster)->NewClient();
  if (!client_or.ok()) return 1;
  client::BlobClient& client = **client_or;

  // Baseline dataset: a noisy sine wave, one unsigned byte per sample.
  auto id = client.Create(kPsize);
  if (!id.ok()) return 1;
  client::Blob dataset(&client, *id);
  std::string signal(kSamples, '\0');
  for (uint64_t i = 0; i < kSamples; i++) {
    double s = 128 + 90 * std::sin(i * 0.02) + 20 * std::sin(i * 1.7);
    signal[i] = static_cast<char>(std::min(255.0, std::max(0.0, s)));
  }
  auto base = dataset.AppendSync(signal);
  if (!base.ok()) return 1;
  printf("dataset: %llu samples at snapshot %llu (|x-128| mean %.2f)\n",
         static_cast<unsigned long long>(kSamples),
         static_cast<unsigned long long>(*base), MeanAbs(signal));

  uint64_t pages_before, bytes_before;
  (void)(*cluster)->TotalProviderUsage(&pages_before, &bytes_before);

  // Three pipelines branch from the same snapshot and diverge in parallel.
  struct Pipeline {
    const char* name;
    std::function<char(char, uint64_t)> fn;
    client::Blob blob;
    double result = 0;
  };
  std::vector<Pipeline> pipelines;
  pipelines.push_back(
      {"low-pass (moving average)",
       [&signal](char, uint64_t i) {
         int acc = 0, n = 0;
         for (uint64_t k = i >= 8 ? i - 8 : 0; k <= i; k++, n++) {
           acc += static_cast<unsigned char>(signal[k]);
         }
         return static_cast<char>(acc / n);
       },
       {}});
  pipelines.push_back({"hard clip to [64, 192]",
                       [](char c, uint64_t) {
                         unsigned char v = static_cast<unsigned char>(c);
                         return static_cast<char>(
                             v < 64 ? 64 : (v > 192 ? 192 : v));
                       },
                       {}});
  pipelines.push_back({"invert",
                       [](char c, uint64_t) {
                         return static_cast<char>(
                             255 - static_cast<unsigned char>(c));
                       },
                       {}});

  for (auto& p : pipelines) {
    auto branch = dataset.Branch(*base);
    if (!branch.ok()) return 1;
    p.blob = *branch;
  }

  std::vector<std::thread> threads;
  for (auto& p : pipelines) {
    threads.emplace_back([&] {
      // Each pipeline rewrites the dataset in 4 KiB strides on its own
      // branch. Writes on one branch never serialize against the others.
      std::string chunk;
      for (uint64_t off = 0; off < kSamples; off += 4096) {
        uint64_t n = std::min<uint64_t>(4096, kSamples - off);
        if (!p.blob.Read(*base, off, n, &chunk).ok()) return;
        for (uint64_t i = 0; i < n; i++) chunk[i] = p.fn(chunk[i], off + i);
        if (!p.blob.WriteSync(chunk, off).ok()) return;
      }
      auto v = p.blob.GetRecent();
      if (!v.ok()) return;
      std::string out;
      if (!p.blob.Read(v->version, 0, v->size, &out).ok()) return;
      p.result = MeanAbs(out);
    });
  }
  for (auto& t : threads) t.join();

  printf("\npipeline results (each on its own branch of snapshot %llu):\n",
         static_cast<unsigned long long>(*base));
  for (auto& p : pipelines) {
    auto v = p.blob.GetRecent();
    printf("  blob %llu  %-28s |x-128| mean %.2f  (%llu versions)\n",
           static_cast<unsigned long long>(p.blob.id()), p.name, p.result,
           v.ok() ? static_cast<unsigned long long>(v->version - *base) : 0ull);
  }

  // The original snapshot is untouched; storage grew only by the pages the
  // pipelines actually rewrote (shared history costs nothing).
  std::string check;
  if (!dataset.Read(*base, 0, kSamples, &check).ok()) return 1;
  printf("\noriginal snapshot intact: %s\n",
         check == signal ? "yes" : "NO (bug!)");
  uint64_t pages_after, bytes_after;
  (void)(*cluster)->TotalProviderUsage(&pages_after, &bytes_after);
  printf("storage: %llu pages before branching, %llu after three full "
         "rewrites\n(3 branches x %llu pages each would cost %llu more "
         "with copies)\n",
         static_cast<unsigned long long>(pages_before),
         static_cast<unsigned long long>(pages_after),
         static_cast<unsigned long long>(kSamples / kPsize),
         static_cast<unsigned long long>(3 * (kSamples / kPsize)));
  printf("branching_lab OK\n");
  return 0;
}
