// The paper's motivating scenario (section 2.2): a photo-processing
// company stores every uploaded picture in one huge blob. Upload sites
// APPEND pictures concurrently; at intervals, a fleet of map workers READs
// disjoint parts of a recent snapshot, computes per-camera contrast
// statistics (the map/reduce), and overwrites pictures in place with
// enhanced versions (WRITE) — saving the storage a duplicate output blob
// would cost. Versioning keeps older snapshots readable while all of this
// runs.
//
// Run: ./build/examples/photo_archive
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/cluster.h"

using namespace blobseer;

namespace {

constexpr uint64_t kPsize = 4096;
constexpr int kUploadSites = 4;
constexpr int kPhotosPerSite = 12;
constexpr int kMapWorkers = 4;

// A "photo": an 8-byte header (camera id, payload length) + pixel bytes.
std::string MakePhoto(uint32_t camera, Rng* rng) {
  uint32_t len = 600 + static_cast<uint32_t>(rng->Uniform(4000));
  std::string photo(8 + len, '\0');
  memcpy(photo.data(), &camera, 4);
  memcpy(photo.data() + 4, &len, 4);
  for (uint32_t i = 0; i < len; i++) {
    photo[8 + i] = static_cast<char>(rng->Uniform(256));
  }
  return photo;
}

// Average "contrast": dispersion of byte values around 128.
double Contrast(const std::string& pixels) {
  double sum = 0;
  for (unsigned char c : pixels) sum += (c > 128 ? c - 128 : 128 - c);
  return pixels.empty() ? 0 : sum / static_cast<double>(pixels.size());
}

}  // namespace

int main() {
  core::ClusterOptions copts;
  copts.num_providers = 6;
  copts.num_meta = 6;
  auto cluster = core::EmbeddedCluster::Start(copts);
  if (!cluster.ok()) {
    fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }
  auto owner = (*cluster)->NewClient();
  if (!owner.ok()) return 1;
  auto id = (*owner)->Create(kPsize);
  if (!id.ok()) return 1;

  // --- Phase 1: upload sites append photos concurrently. ---------------
  printf("phase 1: %d sites upload %d photos each, concurrently...\n",
         kUploadSites, kPhotosPerSite);
  std::vector<std::thread> sites;
  for (int s = 0; s < kUploadSites; s++) {
    sites.emplace_back([&, s] {
      auto client = (*cluster)->NewClient();
      if (!client.ok()) return;
      Rng rng(1000 + s);
      for (int i = 0; i < kPhotosPerSite; i++) {
        uint32_t camera = static_cast<uint32_t>(rng.Uniform(3));
        std::string photo = MakePhoto(camera, &rng);
        auto v = (*client)->Append(*id, Slice(photo));
        if (!v.ok()) {
          fprintf(stderr, "append failed: %s\n",
                  v.status().ToString().c_str());
          return;
        }
      }
    });
  }
  for (auto& t : sites) t.join();

  auto snapshot = (*owner)->GetRecent(*id);
  if (!snapshot.ok() || !(*owner)->Sync(*id, snapshot->version).ok()) return 1;
  printf("  blob now at version %llu, %llu bytes\n",
         static_cast<unsigned long long>(snapshot->version),
         static_cast<unsigned long long>(snapshot->size));

  // --- Phase 2: map over a fixed snapshot while uploads continue. -------
  // Index the snapshot once (a real deployment would store photo offsets
  // in a catalog; a linear header scan keeps the example self-contained).
  struct PhotoRef {
    uint64_t offset;
    uint32_t camera;
    uint32_t len;
  };
  std::vector<PhotoRef> photos;
  {
    uint64_t off = 0;
    std::string header;
    while (off + 8 <= snapshot->size) {
      if (!(*owner)->Read(*id, snapshot->version, off, 8, &header).ok()) return 1;
      PhotoRef ref;
      memcpy(&ref.camera, header.data(), 4);
      memcpy(&ref.len, header.data() + 4, 4);
      ref.offset = off;
      photos.push_back(ref);
      off += 8 + ref.len;
    }
  }
  printf("phase 2: %zu photos indexed; %d map workers process snapshot %llu "
         "while new uploads arrive...\n",
         photos.size(), kMapWorkers,
         static_cast<unsigned long long>(snapshot->version));

  // Background uploads keep appending to prove snapshot isolation.
  std::thread background([&] {
    auto client = (*cluster)->NewClient();
    if (!client.ok()) return;
    Rng rng(99);
    for (int i = 0; i < 10; i++) {
      std::string photo = MakePhoto(2, &rng);
      (void)(*client)->Append(*id, Slice(photo));
    }
  });

  // Map phase: disjoint photo ranges per worker; each computes per-camera
  // contrast and "enhances" (overwrites) photos with low contrast.
  std::mutex agg_mu;
  std::map<uint32_t, std::pair<double, int>> contrast_by_camera;
  int enhanced = 0;
  std::vector<std::thread> workers;
  for (int w = 0; w < kMapWorkers; w++) {
    workers.emplace_back([&, w] {
      auto client = (*cluster)->NewClient();
      if (!client.ok()) return;
      for (size_t i = w; i < photos.size(); i += kMapWorkers) {
        const PhotoRef& ref = photos[i];
        std::string pixels;
        if (!(*client)
                 ->Read(*id, snapshot->version, ref.offset + 8, ref.len, &pixels)
                 .ok())
          return;
        double c = Contrast(pixels);
        {
          std::lock_guard<std::mutex> lock(agg_mu);
          auto& [sum, n] = contrast_by_camera[ref.camera];
          sum += c;
          n++;
        }
        if (c < 63.0) {
          // "Enhance": stretch the histogram, overwrite in place. Creates
          // a new version; the mapped snapshot stays bit-identical.
          for (char& px : pixels) {
            int v = static_cast<unsigned char>(px);
            px = static_cast<char>(v < 128 ? v / 2 : 128 + (v - 128) / 2 +
                                                         63);
          }
          auto vw = (*client)->Write(*id, Slice(pixels), ref.offset + 8);
          if (vw.ok()) {
            std::lock_guard<std::mutex> lock(agg_mu);
            enhanced++;
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  background.join();

  // --- Reduce: aggregate per camera type. -------------------------------
  printf("phase 3: reduce — average contrast per camera type:\n");
  for (auto& [camera, acc] : contrast_by_camera) {
    printf("  camera %u: %.2f (n=%d)\n", camera, acc.first / acc.second,
           acc.second);
  }
  printf("  %d photos enhanced in place (new snapshots, zero data copied "
         "for untouched photos)\n",
         enhanced);

  // --- Versioning dividend: the mapped snapshot is still intact. --------
  auto final_v = (*owner)->GetRecent(*id);
  if (!final_v.ok()) return 1;
  std::string probe_then, probe_now;
  const PhotoRef& first = photos[0];
  if (!(*owner)->Read(*id, snapshot->version, first.offset + 8, first.len,
                      &probe_then).ok())
    return 1;
  if (!(*owner)->Read(*id, final_v->version, first.offset + 8, first.len,
                      &probe_now)
           .ok())
    return 1;
  printf("final: version %llu (%llu bytes). Snapshot %llu still readable; "
         "first photo %s by enhancement.\n",
         static_cast<unsigned long long>(final_v->version),
         static_cast<unsigned long long>(final_v->size),
         static_cast<unsigned long long>(snapshot->version),
         probe_then == probe_now ? "untouched" : "changed (old version kept)");
  printf("photo_archive OK\n");
  return 0;
}
